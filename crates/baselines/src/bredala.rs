//! A Bredala/Decaf-style semantic redistribution layer (Figs. 9–10).
//!
//! Bredala's data model is a *container* of annotated fields. Each field
//! carries a redistribution policy:
//!
//! * [`Policy::Contiguous`] — the field is a linear list of fixed-size
//!   items with no spatial meaning beyond global order. Redistribution
//!   only preserves ordering, so intersections are 1-d range overlaps and
//!   items move in contiguous chunks. Fast (the particles curve in
//!   Fig. 9).
//! * [`Policy::BoundingBox`] — items are grid points indexed by
//!   d-dimensional coordinates that must land inside each consumer's
//!   bounding box. Faithful to the measured behavior of Bredala, every
//!   point is tested and serialized individually **with its coordinates**
//!   (semantic annotations travel with the data), which is why the grid
//!   curve in Fig. 9 blows up: per-point intersection work plus
//!   `d × 8`-byte coordinate overhead per element.

use bytes::Bytes;
use simmpi::{Comm, Tag};

use minih5::codec::{Reader, Writer};
use minih5::BBox;

use crate::boxes::{local_offset, BoxCoords};

/// How a field is redistributed. Bredala "supports several redistribution
/// policies: round-robin, contiguous, and bounding box intersections".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Policy {
    /// Linear list of items; global order preserved.
    Contiguous {
        /// Bytes per item (e.g. 12 for a 3-float particle).
        item_size: usize,
        /// Global item range held locally `[start, end)`.
        range: (u64, u64),
    },
    /// Linear list of items dealt cyclically: global item `i` lands on
    /// consumer `i mod m`. Ordering within a consumer follows global
    /// order; no spatial meaning.
    RoundRobin {
        /// Bytes per item.
        item_size: usize,
        /// Global item range held locally `[start, end)`.
        range: (u64, u64),
    },
    /// Grid points constrained to bounding boxes.
    BoundingBox {
        /// Bytes per point.
        item_size: usize,
        /// Local box within the global domain.
        bbox: BBox,
    },
}

/// One annotated field of a container.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    pub policy: Policy,
    /// Items/points packed row-major (within the range or box).
    pub data: Bytes,
}

impl Field {
    pub fn contiguous(name: &str, item_size: usize, range: (u64, u64), data: Bytes) -> Field {
        assert_eq!(data.len() as u64, (range.1 - range.0) * item_size as u64);
        Field { name: name.to_string(), policy: Policy::Contiguous { item_size, range }, data }
    }

    pub fn round_robin(name: &str, item_size: usize, range: (u64, u64), data: Bytes) -> Field {
        assert_eq!(data.len() as u64, (range.1 - range.0) * item_size as u64);
        Field { name: name.to_string(), policy: Policy::RoundRobin { item_size, range }, data }
    }

    pub fn bounding_box(name: &str, item_size: usize, bbox: BBox, data: Bytes) -> Field {
        assert_eq!(data.len() as u64, bbox.npoints() * item_size as u64);
        Field { name: name.to_string(), policy: Policy::BoundingBox { item_size, bbox }, data }
    }
}

/// A Bredala container: fields appended one at a time, each with its
/// redistribution annotations (the paper: "data intended to be moved among
/// tasks are first appended to a container … along with annotations
/// indicating how each field is handled during data redistribution").
#[derive(Debug, Clone, Default)]
pub struct Container {
    pub fields: Vec<Field>,
}

impl Container {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn append(&mut self, field: Field) -> &mut Self {
        self.fields.push(field);
        self
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// Producer side of the contiguous policy: split the local item range by
/// the consumers' ranges and ship chunks (efficient memcpy path).
pub fn send_contiguous(world: &Comm, tag: Tag, field: &Field, consumers: &[(usize, (u64, u64))]) {
    let (item_size, range) = match &field.policy {
        Policy::Contiguous { item_size, range } => (*item_size, *range),
        _ => panic!("send_contiguous needs a Contiguous field"),
    };
    for &(rank, (cs, ce)) in consumers {
        let s = range.0.max(cs);
        let e = range.1.min(ce);
        if s >= e {
            continue;
        }
        let off = ((s - range.0) as usize) * item_size;
        let len = ((e - s) as usize) * item_size;
        // Header: global start index of this chunk.
        let mut w = Writer::new();
        w.put_u64(s);
        w.put_bytes(&field.data[off..off + len]);
        world.send(rank, tag, w.finish());
    }
}

/// Consumer side of the contiguous policy.
pub fn recv_contiguous(
    world: &Comm,
    tag: Tag,
    item_size: usize,
    my_range: (u64, u64),
    producers: &[(usize, (u64, u64))],
) -> Vec<u8> {
    let mut out = vec![0u8; ((my_range.1 - my_range.0) as usize) * item_size];
    for &(rank, (ps, pe)) in producers {
        let s = my_range.0.max(ps);
        let e = my_range.1.min(pe);
        if s >= e {
            continue;
        }
        let env = world.recv(rank.into(), tag.into());
        let mut r = Reader::new(&env.payload);
        let gs = r.get_u64().expect("chunk start");
        let chunk = r.get_bytes().expect("chunk body");
        let off = ((gs - my_range.0) as usize) * item_size;
        out[off..off + chunk.len()].copy_from_slice(chunk);
    }
    out
}

/// Producer side of the round-robin policy: deal each local item to
/// consumer `global_index mod m`, batched per consumer. Per-item header
/// carries the global index so receivers can place out-of-order arrivals.
pub fn send_round_robin(world: &Comm, tag: Tag, field: &Field, consumers: &[usize]) {
    let (item_size, range) = match &field.policy {
        Policy::RoundRobin { item_size, range } => (*item_size, *range),
        _ => panic!("send_round_robin needs a RoundRobin field"),
    };
    let m = consumers.len() as u64;
    let mut batches: Vec<Writer> = consumers.iter().map(|_| Writer::new()).collect();
    let mut counts = vec![0u64; consumers.len()];
    for i in range.0..range.1 {
        let c = (i % m) as usize;
        batches[c].put_u64(i);
        let off = ((i - range.0) as usize) * item_size;
        batches[c].put_raw(&field.data[off..off + item_size]);
        counts[c] += 1;
    }
    for ((&rank, batch), count) in consumers.iter().zip(batches).zip(counts) {
        if count == 0 {
            continue;
        }
        let mut w = Writer::new();
        w.put_u64(count);
        w.put_raw(&batch.finish());
        world.send(rank, tag, w.finish());
    }
}

/// Consumer side of the round-robin policy: consumer `c` of `m` owns
/// global items `{i : i mod m == c}`, packed in increasing global order.
pub fn recv_round_robin(
    world: &Comm,
    tag: Tag,
    item_size: usize,
    my_index: usize,
    num_consumers: usize,
    total_items: u64,
    producers: &[(usize, (u64, u64))],
) -> Vec<u8> {
    let m = num_consumers as u64;
    let c = my_index as u64;
    let my_count = if total_items > c { (total_items - c).div_ceil(m) } else { 0 };
    let mut out = vec![0u8; (my_count as usize) * item_size];
    for &(rank, (ps, pe)) in producers {
        // Does this producer hold any item congruent to c mod m?
        let first = if ps % m <= c { ps - ps % m + c } else { ps + (m - ps % m) + c };
        if first >= pe {
            continue;
        }
        let env = world.recv(rank.into(), tag.into());
        let mut r = Reader::new(&env.payload);
        let count = r.get_u64().expect("count");
        for _ in 0..count {
            let g = r.get_u64().expect("global index");
            debug_assert_eq!(g % m, c);
            let slot = ((g - c) / m) as usize * item_size;
            for b in 0..item_size {
                out[slot + b] = r.get_u8().expect("item byte");
            }
        }
    }
    out
}

/// Producer side of the bounding-box policy: every point of each
/// producer–consumer intersection is serialized individually **with its
/// coordinates** — the per-point semantic path whose index computation and
/// communication dominated Bredala's measured time ("most of that time is
/// spent computing and communicating the indices of intersecting bounding
/// boxes").
pub fn send_bbox(world: &Comm, tag: Tag, field: &Field, consumers: &[(usize, BBox)]) {
    let (item_size, bbox) = match &field.policy {
        Policy::BoundingBox { item_size, bbox } => (*item_size, bbox.clone()),
        _ => panic!("send_bbox needs a BoundingBox field"),
    };
    for (rank, cbox) in consumers {
        let ibox = bbox.intersect(cbox);
        if ibox.is_empty() {
            continue;
        }
        let mut w = Writer::new();
        w.put_u64(ibox.npoints());
        for coord in BoxCoords::new(&ibox) {
            // Coordinates travel with every point (semantic annotations),
            // and the source offset is recomputed per point.
            for &c in &coord {
                w.put_u64(c);
            }
            let off = local_offset(&bbox, &coord) * item_size;
            w.put_raw(&field.data[off..off + item_size]);
        }
        world.send(*rank, tag, w.finish());
    }
}

/// Consumer side of the bounding-box policy: place each received point by
/// its coordinates.
pub fn recv_bbox(
    world: &Comm,
    tag: Tag,
    item_size: usize,
    my_box: &BBox,
    producers: &[(usize, BBox)],
) -> Vec<u8> {
    let rank_dims = my_box.rank();
    let mut out = vec![0u8; (my_box.npoints() as usize) * item_size];
    for (prank, pbox) in producers {
        if pbox.intersect(my_box).is_empty() {
            continue;
        }
        let env = world.recv((*prank).into(), tag.into());
        let mut r = Reader::new(&env.payload);
        let count = r.get_u64().expect("point count");
        let mut coord = vec![0u64; rank_dims];
        for _ in 0..count {
            for c in coord.iter_mut() {
                *c = r.get_u64().expect("coordinate");
            }
            let off = local_offset(my_box, &coord) * item_size;
            for b in 0..item_size {
                out[off + b] = r.get_u8().expect("value byte");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::{TaskSpec, TaskWorld};

    /// Figure 10 top: a linear particle list, 3 producers → 2 consumers,
    /// ordering preserved.
    #[test]
    fn contiguous_policy_preserves_order() {
        const ITEM: usize = 12; // 3 x f32, like the paper's particles
        let specs = [TaskSpec::new("p", 3), TaskSpec::new("c", 2)];
        TaskWorld::run(&specs, |tc| {
            let pranges: Vec<(usize, (u64, u64))> = (0..3)
                .map(|r| (tc.world_rank_of(0, r), (r as u64 * 10, r as u64 * 10 + 10)))
                .collect();
            let cranges: Vec<(usize, (u64, u64))> = (0..2)
                .map(|r| (tc.world_rank_of(1, r), (r as u64 * 15, r as u64 * 15 + 15)))
                .collect();
            if tc.task_id == 0 {
                let range = pranges[tc.local.rank()].1;
                let mut data = Vec::new();
                for i in range.0..range.1 {
                    for k in 0..3 {
                        data.extend_from_slice(&(i as f32 + k as f32 * 0.25).to_le_bytes());
                    }
                }
                let f = Field::contiguous("particles", ITEM, range, data.into());
                send_contiguous(&tc.world, 11, &f, &cranges);
            } else {
                let my = cranges[tc.local.rank()].1;
                let got = recv_contiguous(&tc.world, 11, ITEM, my, &pranges);
                for (j, i) in (my.0..my.1).enumerate() {
                    for k in 0..3 {
                        let off = j * ITEM + k * 4;
                        let v = f32::from_le_bytes(got[off..off + 4].try_into().unwrap());
                        // All 3 coordinates of an item stay colocated.
                        assert_eq!(v, i as f32 + k as f32 * 0.25);
                    }
                }
            }
        });
    }

    /// Figure 10 bottom: grid points must land inside the consumers'
    /// boxes.
    #[test]
    fn bbox_policy_places_points_by_coordinates() {
        const N: u64 = 8;
        let specs = [TaskSpec::new("p", 2), TaskSpec::new("c", 2)];
        TaskWorld::run(&specs, |tc| {
            // Producers: row halves. Consumers: column halves.
            let pboxes: Vec<(usize, BBox)> = (0..2)
                .map(|r| {
                    (
                        tc.world_rank_of(0, r),
                        BBox::new(vec![r as u64 * 4, 0], vec![r as u64 * 4 + 4, N]),
                    )
                })
                .collect();
            let cboxes: Vec<(usize, BBox)> = (0..2)
                .map(|r| {
                    (
                        tc.world_rank_of(1, r),
                        BBox::new(vec![0, r as u64 * 4], vec![N, r as u64 * 4 + 4]),
                    )
                })
                .collect();
            if tc.task_id == 0 {
                let my = pboxes[tc.local.rank()].1.clone();
                let data: Vec<u8> =
                    BoxCoords::new(&my).flat_map(|c| (c[0] * N + c[1]).to_le_bytes()).collect();
                let f = Field::bounding_box("grid", 8, my, data.into());
                send_bbox(&tc.world, 13, &f, &cboxes);
            } else {
                let my = cboxes[tc.local.rank()].1.clone();
                let got = recv_bbox(&tc.world, 13, 8, &my, &pboxes);
                for (i, c) in BoxCoords::new(&my).enumerate() {
                    let v = u64::from_le_bytes(got[i * 8..i * 8 + 8].try_into().unwrap());
                    assert_eq!(v, c[0] * N + c[1]);
                }
            }
        });
    }

    #[test]
    fn container_api() {
        let mut c = Container::new();
        c.append(Field::contiguous("p", 4, (0, 2), vec![0u8; 8].into()));
        c.append(Field::bounding_box("g", 1, BBox::new(vec![0], vec![3]), vec![1u8, 2, 3].into()));
        assert_eq!(c.fields.len(), 2);
        assert!(c.field("p").is_some());
        assert!(c.field("missing").is_none());
    }

    #[test]
    #[should_panic]
    fn field_size_validated() {
        let _ = Field::contiguous("x", 4, (0, 3), vec![0u8; 8].into());
    }
}

#[cfg(test)]
mod round_robin_tests {
    use super::*;
    use simmpi::{TaskSpec, TaskWorld};

    /// 3 producers → 2 consumers, items dealt cyclically; each consumer
    /// holds its residue class in global order.
    #[test]
    fn round_robin_deals_by_residue() {
        const TOTAL: u64 = 23; // odd count exercises uneven tails
        const ITEM: usize = 4;
        let specs = [TaskSpec::new("p", 3), TaskSpec::new("c", 2)];
        TaskWorld::run(&specs, |tc| {
            let pranges: Vec<(usize, (u64, u64))> = (0..3)
                .map(|r| {
                    let s = TOTAL * r as u64 / 3;
                    let e = TOTAL * (r as u64 + 1) / 3;
                    (tc.world_rank_of(0, r), (s, e))
                })
                .collect();
            let consumers: Vec<usize> = (0..2).map(|r| tc.world_rank_of(1, r)).collect();
            if tc.task_id == 0 {
                let range = pranges[tc.local.rank()].1;
                let data: Vec<u8> =
                    (range.0..range.1).flat_map(|i| (i as u32).to_le_bytes()).collect();
                let f = Field::round_robin("x", ITEM, range, data.into());
                send_round_robin(&tc.world, 15, &f, &consumers);
            } else {
                let me = tc.local.rank();
                let got = recv_round_robin(&tc.world, 15, ITEM, me, 2, TOTAL, &pranges);
                let expect: Vec<u32> =
                    (0..TOTAL).filter(|i| i % 2 == me as u64).map(|i| i as u32).collect();
                let vals: Vec<u32> =
                    got.chunks(ITEM).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
                assert_eq!(vals, expect);
            }
        });
    }

    #[test]
    fn round_robin_more_consumers_than_items() {
        let specs = [TaskSpec::new("p", 1), TaskSpec::new("c", 4)];
        TaskWorld::run(&specs, |tc| {
            let pranges = vec![(tc.world_rank_of(0, 0), (0u64, 2u64))];
            let consumers: Vec<usize> = (0..4).map(|r| tc.world_rank_of(1, r)).collect();
            if tc.task_id == 0 {
                let f = Field::round_robin("x", 1, (0, 2), vec![10u8, 11].into());
                send_round_robin(&tc.world, 16, &f, &consumers);
            } else {
                let me = tc.local.rank();
                let got = recv_round_robin(&tc.world, 16, 1, me, 4, 2, &pranges);
                match me {
                    0 => assert_eq!(got, vec![10]),
                    1 => assert_eq!(got, vec![11]),
                    _ => assert!(got.is_empty()),
                }
            }
        });
    }
}
