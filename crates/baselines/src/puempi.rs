//! The hand-written "pure MPI" redistribution (Fig. 7 comparator).
//!
//! Unlike LowFive, both sides know each other's decomposition statically:
//! producers compute the intersection of their local box with every
//! consumer box and ship it; consumers post one receive per intersecting
//! producer. There is no metadata exchange, no indexing, no serve loop —
//! but serialization is **per point**, with coordinate arithmetic on every
//! element, as the paper describes of the comparator code.

use simmpi::{Comm, Tag};

use minih5::BBox;

use crate::boxes::{local_offset, BoxCoords};

/// Producer side: ship the intersection of `(my_box, data)` with each
/// consumer box, one message per consumer with a nonempty intersection.
///
/// `data` holds the elements of `my_box` packed row-major, `es` bytes
/// each. An empty intersection sends nothing (both sides compute the same
/// intersections, so receives match).
pub fn send_grid(
    world: &Comm,
    tag: Tag,
    es: usize,
    my_box: &BBox,
    data: &[u8],
    consumers: &[(usize, BBox)],
) {
    assert_eq!(data.len() as u64, my_box.npoints() * es as u64, "data size matches box");
    for (rank, cbox) in consumers {
        let ibox = my_box.intersect(cbox);
        if ibox.is_empty() {
            continue;
        }
        // One point at a time: offset arithmetic per element.
        let mut buf = Vec::with_capacity((ibox.npoints() as usize) * es);
        for coord in BoxCoords::new(&ibox) {
            let off = local_offset(my_box, &coord) * es;
            buf.extend_from_slice(&data[off..off + es]);
        }
        world.send(*rank, tag, buf);
    }
}

/// Consumer side: receive from every producer whose box intersects
/// `my_box` and scatter, one point at a time, into the packed local
/// buffer. Returns the `my_box` elements packed row-major.
pub fn recv_grid(
    world: &Comm,
    tag: Tag,
    es: usize,
    my_box: &BBox,
    producers: &[(usize, BBox)],
) -> Vec<u8> {
    let mut out = vec![0u8; (my_box.npoints() as usize) * es];
    for (rank, pbox) in producers {
        let ibox = pbox.intersect(my_box);
        if ibox.is_empty() {
            continue;
        }
        let env = world.recv((*rank).into(), tag.into());
        assert_eq!(env.payload.len() as u64, ibox.npoints() * es as u64);
        let mut p = 0usize;
        for coord in BoxCoords::new(&ibox) {
            let off = local_offset(my_box, &coord) * es;
            out[off..off + es].copy_from_slice(&env.payload[p..p + es]);
            p += es;
        }
    }
    out
}

/// Split `[0, total)` into `n` near-equal contiguous ranges; range `i` is
/// `[split(i), split(i+1))`. The standard hand-rolled decomposition for
/// 1-d particle lists.
pub fn contiguous_range(total: u64, n: usize, i: usize) -> (u64, u64) {
    ((total * i as u64) / n as u64, (total * (i + 1) as u64) / n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::{TaskSpec, TaskWorld};

    /// 2 producers (rows) → 3 consumers (columns) on a 6x6 byte grid.
    #[test]
    fn row_to_column_exchange() {
        const N: u64 = 6;
        let specs = [TaskSpec::new("p", 2), TaskSpec::new("c", 3)];
        TaskWorld::run(&specs, |tc| {
            let prod_boxes: Vec<(usize, BBox)> = (0..2)
                .map(|r| {
                    (
                        tc.world_rank_of(0, r),
                        BBox::new(vec![r as u64 * 3, 0], vec![r as u64 * 3 + 3, N]),
                    )
                })
                .collect();
            let cons_boxes: Vec<(usize, BBox)> = (0..3)
                .map(|r| {
                    (
                        tc.world_rank_of(1, r),
                        BBox::new(vec![0, r as u64 * 2], vec![N, r as u64 * 2 + 2]),
                    )
                })
                .collect();
            if tc.task_id == 0 {
                let my_box = prod_boxes[tc.local.rank()].1.clone();
                // value = global linear index (as u8, small grid).
                let data: Vec<u8> =
                    BoxCoords::new(&my_box).map(|c| (c[0] * N + c[1]) as u8).collect();
                send_grid(&tc.world, 7, 1, &my_box, &data, &cons_boxes);
            } else {
                let my_box = cons_boxes[tc.local.rank()].1.clone();
                let got = recv_grid(&tc.world, 7, 1, &my_box, &prod_boxes);
                let expect: Vec<u8> =
                    BoxCoords::new(&my_box).map(|c| (c[0] * N + c[1]) as u8).collect();
                assert_eq!(got, expect);
            }
        });
    }

    #[test]
    fn multibyte_elements() {
        let specs = [TaskSpec::new("p", 1), TaskSpec::new("c", 2)];
        TaskWorld::run(&specs, |tc| {
            let pbox = BBox::new(vec![0], vec![8]);
            let prod = vec![(tc.world_rank_of(0, 0), pbox.clone())];
            let cons: Vec<(usize, BBox)> = (0..2)
                .map(|r| {
                    (tc.world_rank_of(1, r), BBox::new(vec![r as u64 * 4], vec![r as u64 * 4 + 4]))
                })
                .collect();
            if tc.task_id == 0 {
                let data: Vec<u8> = (0..8u64).flat_map(|v| v.to_le_bytes()).collect();
                send_grid(&tc.world, 9, 8, &pbox, &data, &cons);
            } else {
                let my_box = cons[tc.local.rank()].1.clone();
                let got = recv_grid(&tc.world, 9, 8, &my_box, &prod);
                let vals: Vec<u64> =
                    got.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
                let base = tc.local.rank() as u64 * 4;
                assert_eq!(vals, (base..base + 4).collect::<Vec<u64>>());
            }
        });
    }

    #[test]
    fn contiguous_range_covers_everything() {
        for total in [10u64, 17, 1000] {
            for n in [1usize, 3, 7] {
                let mut covered = 0;
                for i in 0..n {
                    let (s, e) = contiguous_range(total, n, i);
                    assert!(s <= e);
                    covered += e - s;
                    if i > 0 {
                        assert_eq!(contiguous_range(total, n, i - 1).1, s);
                    }
                }
                assert_eq!(covered, total);
            }
        }
    }
}
