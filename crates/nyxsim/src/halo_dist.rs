//! Distributed halo finding with local exchanges — the parallel analysis
//! Reeber actually performs, rather than a gather-everything fallback.
//!
//! Following the local–global pattern of Nigmetov & Morozov (SC'19, the
//! paper's reference \[33\]): each analysis rank sweeps its own x-slab
//! (same merge-tree-flavored union-find as [`crate::halo::find_halos`]),
//! then exchanges only its **boundary plane** with its slab neighbor to
//! discover components spanning rank boundaries, and finally the
//! per-component statistics plus cross-boundary equivalences — tiny
//! compared to the field itself — are reduced on rank 0.

use std::collections::HashMap;

use simmpi::Comm;

use crate::halo::Halo;

/// Tag for the boundary-plane exchange messages.
const TAG_PLANE: u32 = 0x7E20_0001;

/// Tag for the per-rank component-stats reduction onto rank 0.
const TAG_STATS: u32 = 0x7E20_0002;

/// A component-local record shipped to rank 0.
#[derive(Debug, Clone)]
struct CompStat {
    gid: u64,
    cells: u64,
    mass: f64,
    peak: [u64; 3],
    peak_density: f64,
}

fn encode_stats(stats: &[CompStat], equiv: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + stats.len() * 56 + equiv.len() * 16);
    out.extend_from_slice(&(stats.len() as u64).to_le_bytes());
    for s in stats {
        out.extend_from_slice(&s.gid.to_le_bytes());
        out.extend_from_slice(&s.cells.to_le_bytes());
        out.extend_from_slice(&s.mass.to_le_bytes());
        for c in s.peak {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&s.peak_density.to_le_bytes());
    }
    out.extend_from_slice(&(equiv.len() as u64).to_le_bytes());
    for (a, b) in equiv {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

fn decode_stats(buf: &[u8]) -> (Vec<CompStat>, Vec<(u64, u64)>) {
    let mut off = 0usize;
    let u64_at = |off: &mut usize| {
        let v = u64::from_le_bytes(buf[*off..*off + 8].try_into().expect("8 bytes"));
        *off += 8;
        v
    };
    let n = u64_at(&mut off) as usize;
    let mut stats = Vec::with_capacity(n);
    for _ in 0..n {
        let gid = u64_at(&mut off);
        let cells = u64_at(&mut off);
        let mass = f64::from_bits(u64_at(&mut off));
        let peak = [u64_at(&mut off), u64_at(&mut off), u64_at(&mut off)];
        let peak_density = f64::from_bits(u64_at(&mut off));
        stats.push(CompStat { gid, cells, mass, peak, peak_density });
    }
    let ne = u64_at(&mut off) as usize;
    let mut equiv = Vec::with_capacity(ne);
    for _ in 0..ne {
        equiv.push((u64_at(&mut off), u64_at(&mut off)));
    }
    (stats, equiv)
}

/// Local sweep over one x-slab: returns a per-cell root label (usize::MAX
/// for below-threshold cells) and per-root statistics.
fn local_components(
    dims: [u64; 3],
    slab_lo: u64,
    rho: &[f64],
    threshold: f64,
) -> (Vec<u32>, HashMap<u32, CompStat>) {
    let (ny, nz) = (dims[1] as usize, dims[2] as usize);
    let nx = rho.len() / (ny * nz);
    const NONE: u32 = u32::MAX;
    let mut parent: Vec<u32> = (0..rho.len() as u32).collect();
    let mut in_set = vec![false; rho.len()];

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    // Densest-first sweep (merge-tree order).
    let mut order: Vec<u32> =
        (0..rho.len() as u32).filter(|&i| rho[i as usize] > threshold).collect();
    order.sort_unstable_by(|&a, &b| {
        rho[b as usize].partial_cmp(&rho[a as usize]).expect("finite").then(a.cmp(&b))
    });
    for &c in &order {
        in_set[c as usize] = true;
        let i = c as usize;
        let (x, y, z) = (i / (ny * nz), (i / nz) % ny, i % nz);
        let join = |j: usize, parent: &mut Vec<u32>| {
            if in_set[j] {
                let (ra, rb) = (find(parent, c), find(parent, j as u32));
                if ra != rb {
                    parent[rb as usize] = ra;
                }
            }
        };
        if x > 0 {
            join(i - ny * nz, &mut parent);
        }
        if x + 1 < nx {
            join(i + ny * nz, &mut parent);
        }
        if y > 0 {
            join(i - nz, &mut parent);
        }
        if y + 1 < ny {
            join(i + nz, &mut parent);
        }
        if z > 0 {
            join(i - 1, &mut parent);
        }
        if z + 1 < nz {
            join(i + 1, &mut parent);
        }
    }

    let mut labels = vec![NONE; rho.len()];
    let mut stats: HashMap<u32, CompStat> = HashMap::new();
    for &c in &order {
        let root = find(&mut parent, c);
        labels[c as usize] = root;
        let i = c as usize;
        let coord = [slab_lo + (i / (ny * nz)) as u64, ((i / nz) % ny) as u64, (i % nz) as u64];
        let e = stats.entry(root).or_insert(CompStat {
            gid: 0, // filled by caller with the rank-global id
            cells: 0,
            mass: 0.0,
            peak: coord,
            peak_density: f64::NEG_INFINITY,
        });
        e.cells += 1;
        e.mass += rho[i];
        if rho[i] > e.peak_density {
            e.peak_density = rho[i];
            e.peak = coord;
        }
    }
    (labels, stats)
}

/// Distributed halo finding over x-slabs (slab of rank r must be
/// contiguous and ordered by rank). Every rank passes its local slab;
/// rank 0 receives the merged, mass-sorted halos.
pub fn find_halos_distributed(
    comm: &Comm,
    dims: [u64; 3],
    slab: (u64, u64),
    rho: &[f64],
    threshold: f64,
    min_cells: u64,
) -> Option<Vec<Halo>> {
    let (ny, nz) = (dims[1] as usize, dims[2] as usize);
    let plane = ny * nz;
    assert_eq!(rho.len() as u64, (slab.1 - slab.0) * plane as u64, "slab size");
    let rank = comm.rank() as u64;
    let gid_of = |label: u32| (rank << 40) | u64::from(label);

    let (labels, mut stats) = local_components(dims, slab.0, rho, threshold);
    for (label, s) in stats.iter_mut() {
        s.gid = gid_of(*label);
    }

    // Boundary exchange: ship my LAST plane (density + label) rightwards;
    // the right neighbor matches it against its FIRST plane.
    let mut equiv: Vec<(u64, u64)> = Vec::new();
    if comm.rank() + 1 < comm.size() && !rho.is_empty() {
        let base = rho.len() - plane;
        let mut msg = Vec::with_capacity(plane * 16);
        for k in 0..plane {
            msg.extend_from_slice(&rho[base + k].to_le_bytes());
            let g = if labels[base + k] == u32::MAX { u64::MAX } else { gid_of(labels[base + k]) };
            msg.extend_from_slice(&g.to_le_bytes());
        }
        comm.send(comm.rank() + 1, TAG_PLANE, msg);
    }
    if comm.rank() > 0 && !rho.is_empty() {
        let env = comm.recv((comm.rank() - 1).into(), TAG_PLANE.into());
        for (k, &lab) in labels.iter().enumerate().take(plane) {
            let off = k * 16;
            let their_rho = f64::from_le_bytes(env.payload[off..off + 8].try_into().expect("8"));
            let their_gid =
                u64::from_le_bytes(env.payload[off + 8..off + 16].try_into().expect("8"));
            if their_gid == u64::MAX || their_rho <= threshold {
                continue;
            }
            // Face-adjacent cell in my first plane.
            if lab != u32::MAX {
                equiv.push((gid_of(lab), their_gid));
            }
        }
    }

    // Reduce component stats + equivalences on rank 0. Non-roots fire
    // their (tiny) record at rank 0 and are done; rank 0 drains the
    // messages in **arrival order** — a straggling low rank delays only
    // its own record, never the drain of everyone else's. The merge
    // below is order-canonicalized, so the result is independent of the
    // order records arrive in.
    let local_stats: Vec<CompStat> = stats.into_values().collect();
    let payload = encode_stats(&local_stats, &equiv);
    if comm.rank() != 0 {
        comm.send(0, TAG_STATS, payload);
        return None;
    }

    // Rank 0: global union-find over component gids.
    let (mut all_stats, mut all_equiv) = decode_stats(&payload);
    for _ in 1..comm.size() {
        let env = comm.recv(simmpi::ANY_SOURCE, TAG_STATS.into());
        let (s, e) = decode_stats(&env.payload);
        all_stats.extend(s);
        all_equiv.extend(e);
    }
    // Canonicalize: gids are globally unique and equivalence pairs are
    // plain data, so sorting both makes every downstream step — union
    // order, f64 mass accumulation order, peak selection — a pure
    // function of the *set* of records, bitwise identical no matter
    // which rank's message landed first.
    all_stats.sort_unstable_by_key(|s| s.gid);
    all_equiv.sort_unstable();
    let mut root: HashMap<u64, u64> = all_stats.iter().map(|s| (s.gid, s.gid)).collect();
    fn findg(root: &mut HashMap<u64, u64>, mut x: u64) -> u64 {
        loop {
            let p = root[&x];
            if p == x {
                return x;
            }
            let gp = root[&p];
            root.insert(x, gp);
            x = gp;
        }
    }
    for (a, b) in all_equiv {
        let (ra, rb) = (findg(&mut root, a), findg(&mut root, b));
        if ra != rb {
            root.insert(rb, ra);
        }
    }
    let mut merged: HashMap<u64, Halo> = HashMap::new();
    let mut peak_density: HashMap<u64, f64> = HashMap::new();
    for s in all_stats {
        let r = findg(&mut root, s.gid);
        let e = merged.entry(r).or_insert(Halo {
            cells: 0,
            mass: 0.0,
            peak: s.peak,
            peak_density: f64::NEG_INFINITY,
        });
        e.cells += s.cells;
        e.mass += s.mass;
        let pd = peak_density.entry(r).or_insert(f64::NEG_INFINITY);
        // Ties on density resolve to the lexicographically smallest peak
        // coordinate so the winner doesn't depend on record order.
        if s.peak_density > *pd || (s.peak_density == *pd && s.peak < e.peak) {
            *pd = s.peak_density;
            e.peak = s.peak;
            e.peak_density = s.peak_density;
        }
    }
    let mut halos: Vec<Halo> = merged.into_values().filter(|h| h.cells >= min_cells).collect();
    halos.sort_by(|a, b| {
        b.mass
            .partial_cmp(&a.mass)
            .expect("finite")
            .then(b.cells.cmp(&a.cells))
            .then(a.peak.cmp(&b.peak))
    });
    Some(halos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::find_halos;
    use crate::sim::{NyxSim, SimConfig};
    use simmpi::World;

    /// Distributed result must equal the serial sweep over the assembled
    /// field, including components that straddle slab boundaries.
    #[test]
    fn matches_serial_on_simulated_field() {
        const G: u64 = 24;
        const RANKS: usize = 4;
        let cfg =
            SimConfig { grid: G, nranks: RANKS, particles_per_rank: 30_000, centers: 5, seed: 77 };
        // Assemble the full field serially.
        let mut field = vec![0.0f64; (G * G * G) as usize];
        let mut slabs = Vec::new();
        for r in 0..RANKS {
            let sim = NyxSim::new(cfg.clone(), r);
            let rho = sim.deposit();
            let (lo, hi) = cfg.slab(r);
            let off = (lo * G * G) as usize;
            field[off..off + rho.len()].copy_from_slice(&rho);
            slabs.push((lo, hi, rho));
        }
        let mean = field.iter().sum::<f64>() / field.len() as f64;
        let threshold = 6.0 * mean;
        let serial = find_halos([G, G, G], &field, threshold, 2);
        assert!(!serial.is_empty());

        let slabs2 = slabs.clone();
        let out = World::run(RANKS, move |c| {
            let (lo, hi, rho) = &slabs2[c.rank()];
            find_halos_distributed(&c, [G, G, G], (*lo, *hi), rho, threshold, 2)
        });
        let dist = out[0].clone().expect("rank 0 gets halos");
        assert_eq!(dist.len(), serial.len(), "halo count");
        for (a, b) in dist.iter().zip(&serial) {
            assert_eq!(a.cells, b.cells);
            assert!((a.mass - b.mass).abs() < 1e-9 * a.mass.max(1.0));
            assert_eq!(a.peak_density, b.peak_density);
        }
        // Non-root ranks get None.
        assert!(out[1].is_none());
    }

    /// A component laid exactly across a slab boundary merges.
    #[test]
    fn boundary_straddling_component_merges() {
        const G: u64 = 8;
        // 2 ranks, slab split at x=4. A rod spanning x=2..6 at (y,z)=(3,3).
        let mk_slab = |lo: u64, hi: u64| {
            let mut rho = vec![0.0f64; ((hi - lo) * G * G) as usize];
            for x in lo..hi {
                if (2..6).contains(&x) {
                    let i = ((x - lo) * G * G + 3 * G + 3) as usize;
                    rho[i] = 5.0;
                }
            }
            rho
        };
        let out = World::run(2, move |c| {
            let (lo, hi) = (c.rank() as u64 * 4, c.rank() as u64 * 4 + 4);
            let rho = mk_slab(lo, hi);
            find_halos_distributed(&c, [G, G, G], (lo, hi), &rho, 1.0, 1)
        });
        let halos = out[0].clone().expect("root result");
        assert_eq!(halos.len(), 1, "rod must be one component: {halos:?}");
        assert_eq!(halos[0].cells, 4);
        assert_eq!(halos[0].mass, 20.0);
    }

    /// Components touching the boundary plane but not face-adjacent stay
    /// separate.
    #[test]
    fn non_adjacent_boundary_cells_stay_separate() {
        const G: u64 = 8;
        let out = World::run(2, move |c| {
            let (lo, hi) = (c.rank() as u64 * 4, c.rank() as u64 * 4 + 4);
            let mut rho = vec![0.0f64; ((hi - lo) * G * G) as usize];
            if c.rank() == 0 {
                // Cell at (3, 1, 1) — last plane of rank 0.
                rho[(3 * G * G + G + 1) as usize] = 4.0;
            } else {
                // Cell at (4, 6, 6) — first plane of rank 1, far corner.
                rho[(6 * G + 6) as usize] = 4.0;
            }
            find_halos_distributed(&c, [G, G, G], (lo, hi), &rho, 1.0, 1)
        });
        let halos = out[0].clone().expect("root result");
        assert_eq!(halos.len(), 2);
    }

    #[test]
    fn single_rank_degenerates_to_serial() {
        const G: u64 = 8;
        let mut rho = vec![0.0f64; (G * G * G) as usize];
        rho[0] = 3.0;
        rho[1] = 3.0;
        let rho2 = rho.clone();
        let out =
            World::run(1, move |c| find_halos_distributed(&c, [G, G, G], (0, G), &rho2, 1.0, 1));
        let halos = out[0].clone().unwrap();
        let serial = find_halos([G, G, G], &rho, 1.0, 1);
        assert_eq!(halos.len(), serial.len());
        assert_eq!(halos[0].cells, 2);
    }

    /// A delayed low-rank sender must not stall the rank-0 merge, and the
    /// merged result must be bitwise identical to the undelayed run: the
    /// drain is arrival-order and the merge is order-canonicalized.
    #[test]
    fn delayed_low_rank_sender_does_not_change_the_merge() {
        const G: u64 = 24;
        const RANKS: usize = 4;
        let cfg =
            SimConfig { grid: G, nranks: RANKS, particles_per_rank: 30_000, centers: 5, seed: 91 };
        let mut slabs = Vec::new();
        let mut total = 0.0f64;
        for r in 0..RANKS {
            let sim = NyxSim::new(cfg.clone(), r);
            let rho = sim.deposit();
            total += rho.iter().sum::<f64>();
            let (lo, hi) = cfg.slab(r);
            slabs.push((lo, hi, rho));
        }
        let threshold = 6.0 * total / (G * G * G) as f64;

        let run = |stagger: bool| {
            let slabs = slabs.clone();
            World::run(RANKS, move |c| {
                if stagger && c.rank() > 0 {
                    // Reverse arrival order: rank 1 is the last to report.
                    let ms = 10 * (RANKS - c.rank()) as u64;
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                let (lo, hi, rho) = &slabs[c.rank()];
                find_halos_distributed(&c, [G, G, G], (*lo, *hi), rho, threshold, 2)
            })
        };
        let plain = run(false)[0].clone().expect("root halos");
        let staggered = run(true)[0].clone().expect("root halos");
        assert!(!plain.is_empty());
        assert_eq!(plain.len(), staggered.len());
        for (a, b) in plain.iter().zip(&staggered) {
            assert_eq!(a.cells, b.cells);
            assert_eq!(a.mass.to_bits(), b.mass.to_bits(), "mass must be bitwise identical");
            assert_eq!(a.peak, b.peak);
            assert_eq!(a.peak_density.to_bits(), b.peak_density.to_bits());
        }
    }

    /// Same property under seeded chaos: message delays reshuffle arrival
    /// order arbitrarily, the merge result must not move.
    #[test]
    fn merge_is_stable_under_fault_plan_delays() {
        const G: u64 = 8;
        let mk_slab = |rank: usize| {
            let (lo, hi) = (rank as u64 * 4, rank as u64 * 4 + 4);
            let mut rho = vec![0.0f64; ((hi - lo) * G * G) as usize];
            for x in lo..hi {
                if (2..6).contains(&x) {
                    rho[((x - lo) * G * G + 3 * G + 3) as usize] = 5.0;
                }
                // A second, rank-local blob so every rank ships stats.
                rho[((x - lo) * G * G + 6 * G + (rank as u64 % G)) as usize] = 2.0;
            }
            (lo, hi, rho)
        };
        let baseline = World::run(2, move |c| {
            let (lo, hi, rho) = mk_slab(c.rank());
            find_halos_distributed(&c, [G, G, G], (lo, hi), &rho, 1.0, 1)
        })[0]
            .clone()
            .expect("root halos");
        for seed in [0x11u64, 0x5EED, 0xF00D] {
            let plan = simmpi::FaultPlan::new(seed)
                .delay(0.6, std::time::Duration::from_micros(800))
                .reorder(0.5);
            let out = World::builder(2).fault_plan(plan).run_chaos(move |c| {
                let (lo, hi, rho) = mk_slab(c.rank());
                find_halos_distributed(&c, [G, G, G], (lo, hi), &rho, 1.0, 1)
            });
            assert!(out.deaths.is_empty());
            let chaotic = out.results[0].clone().flatten().expect("root halos under chaos");
            assert_eq!(baseline.len(), chaotic.len(), "seed {seed:#x}");
            for (a, b) in baseline.iter().zip(&chaotic) {
                assert_eq!(a.cells, b.cells, "seed {seed:#x}");
                assert_eq!(a.mass.to_bits(), b.mass.to_bits(), "seed {seed:#x}");
                assert_eq!(a.peak, b.peak, "seed {seed:#x}");
            }
        }
    }

    #[test]
    fn stats_codec_roundtrip() {
        let stats = vec![CompStat {
            gid: (3u64 << 40) | 17,
            cells: 9,
            mass: 12.5,
            peak: [1, 2, 3],
            peak_density: 7.25,
        }];
        let equiv = vec![(1u64, 2u64), (9, 4)];
        let (s2, e2) = decode_stats(&encode_stats(&stats, &equiv));
        assert_eq!(s2.len(), 1);
        assert_eq!(s2[0].gid, stats[0].gid);
        assert_eq!(s2[0].mass, 12.5);
        assert_eq!(e2, equiv);
    }
}
