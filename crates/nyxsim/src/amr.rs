//! A two-level AMReX-style adaptive mesh.
//!
//! The paper's introduction motivates metadata-aware transport with "an
//! adaptive mesh refined (AMR) simulation that computes many datasets,
//! spanning a dozen variables at different resolutions, coupled to an
//! analysis task that consumes only a single variable at one resolution."
//! This module provides that structure: level 0 is the uniform grid;
//! level 1 consists of 2×-refined patches covering cells whose density
//! exceeds a refinement threshold. When a snapshot with refinement is
//! written, the consumer can (and in the benches does) read *only*
//! `level_0/density`, and the unread level-1 datasets never move.

use minih5::{BBox, Dataspace, Datatype, H5Result, H5};

/// One refined patch: a box on the *fine* index space (2× level 0) plus
/// its cell data.
#[derive(Debug, Clone)]
pub struct Patch {
    /// Patch bounds in fine-level coordinates.
    pub bounds: BBox,
    /// Fine-cell densities, row-major within `bounds`.
    pub data: Vec<f64>,
}

/// A two-level AMR hierarchy for one rank's slab.
#[derive(Debug, Clone)]
pub struct AmrHierarchy {
    /// Global level-0 dims.
    pub dims: [u64; 3],
    /// This rank's level-0 slab bounds.
    pub slab: BBox,
    /// Level-0 data (row-major within `slab`).
    pub level0: Vec<f64>,
    /// Refined patches (level 1, fine coordinates).
    pub patches: Vec<Patch>,
}

impl AmrHierarchy {
    /// Build the hierarchy from a slab field: every level-0 cell with
    /// density above `refine_threshold` spawns a 2×2×2 fine patch whose
    /// cells share the coarse density (piecewise-constant prolongation);
    /// adjacent flagged cells produce adjacent patches.
    pub fn build(
        dims: [u64; 3],
        slab: BBox,
        level0: Vec<f64>,
        refine_threshold: f64,
    ) -> AmrHierarchy {
        assert_eq!(level0.len() as u64, slab.npoints());
        let ext: Vec<u64> = (0..3).map(|i| slab.hi[i] - slab.lo[i]).collect();
        let mut patches = Vec::new();
        for (i, &v) in level0.iter().enumerate() {
            if v <= refine_threshold {
                continue;
            }
            let iu = i as u64;
            let x = slab.lo[0] + iu / (ext[1] * ext[2]);
            let y = slab.lo[1] + (iu / ext[2]) % ext[1];
            let z = slab.lo[2] + iu % ext[2];
            let lo = vec![2 * x, 2 * y, 2 * z];
            let hi = vec![2 * x + 2, 2 * y + 2, 2 * z + 2];
            patches.push(Patch { bounds: BBox::new(lo, hi), data: vec![v; 8] });
        }
        AmrHierarchy { dims, slab, level0, patches }
    }

    /// Total fine cells across patches.
    pub fn fine_cells(&self) -> u64 {
        self.patches.iter().map(|p| p.bounds.npoints()).sum()
    }

    /// Write the full hierarchy through the H5 API:
    ///
    /// ```text
    /// level_0/density               — the coarse grid (collective)
    /// level_1/density               — the fine grid (sparse writes, one
    ///                                 region per patch)
    /// ```
    ///
    /// Attributes record the refinement ratio. Metadata calls must be
    /// made collectively by all ranks (standard parallel-HDF5 contract).
    pub fn write(&self, h5: &H5, name: &str) -> H5Result<()> {
        self.write_with(h5, name, |_| Ok(()))
    }

    /// As [`AmrHierarchy::write`], additionally invoking `extra` on the
    /// open file before anything else (e.g. to attach workflow
    /// attributes). `extra` must behave identically on every rank.
    pub fn write_with(
        &self,
        h5: &H5,
        name: &str,
        extra: impl FnOnce(&minih5::H5File) -> H5Result<()>,
    ) -> H5Result<()> {
        let f = h5.create_file(name)?;
        extra(&f)?;
        f.set_attr("ref_ratio", 2u32)?;
        f.set_attr("num_levels", 2u32)?;
        let g0 = f.create_group("level_0")?;
        let d0 = g0.create_dataset("density", Datatype::Float64, Dataspace::simple(&self.dims))?;
        d0.write_selection(&self.slab.to_selection(), &self.level0)?;
        let fine_dims: Vec<u64> = self.dims.iter().map(|d| d * 2).collect();
        let g1 = f.create_group("level_1")?;
        let d1 = g1.create_dataset("density", Datatype::Float64, Dataspace::simple(&fine_dims))?;
        for p in &self.patches {
            d1.write_selection(&p.bounds.to_selection(), &p.data)?;
        }
        f.close()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minih5::Selection;

    fn slab_field() -> ([u64; 3], BBox, Vec<f64>) {
        let dims = [8, 8, 8];
        let slab = BBox::new(vec![0, 0, 0], vec![8, 8, 8]);
        let mut rho = vec![1.0f64; 512];
        rho[0] = 10.0; // cell (0,0,0)
        rho[7] = 12.0; // cell (0,0,7)
        (dims, slab, rho)
    }

    #[test]
    fn flags_cells_above_threshold() {
        let (dims, slab, rho) = slab_field();
        let amr = AmrHierarchy::build(dims, slab, rho, 5.0);
        assert_eq!(amr.patches.len(), 2);
        assert_eq!(amr.fine_cells(), 16);
        assert_eq!(amr.patches[0].bounds, BBox::new(vec![0, 0, 0], vec![2, 2, 2]));
        assert_eq!(amr.patches[1].bounds, BBox::new(vec![0, 0, 14], vec![2, 2, 16]));
        assert!(amr.patches.iter().all(|p| p.data.len() == 8));
    }

    #[test]
    fn no_refinement_when_quiet() {
        let dims = [4, 4, 4];
        let slab = BBox::new(vec![0, 0, 0], vec![4, 4, 4]);
        let amr = AmrHierarchy::build(dims, slab, vec![1.0; 64], 5.0);
        assert!(amr.patches.is_empty());
    }

    #[test]
    fn slab_offsets_respected() {
        let dims = [8, 4, 4];
        // Second x-slab [4,8).
        let slab = BBox::new(vec![4, 0, 0], vec![8, 4, 4]);
        let mut rho = vec![0.0; 64];
        rho[0] = 9.0; // local (0,0,0) = global (4,0,0)
        let amr = AmrHierarchy::build(dims, slab, rho, 1.0);
        assert_eq!(amr.patches.len(), 1);
        assert_eq!(amr.patches[0].bounds, BBox::new(vec![8, 0, 0], vec![10, 2, 2]));
    }

    #[test]
    fn writes_two_levels_through_h5() {
        let dir = std::env::temp_dir().join("nyxsim-amr-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("amr.nh5").to_str().unwrap().to_string();
        let (dims, slab, rho) = slab_field();
        let amr = AmrHierarchy::build(dims, slab, rho.clone(), 5.0);
        let h5 = H5::native();
        amr.write(&h5, &path).unwrap();

        let f = h5.open_file(&path).unwrap();
        assert_eq!(f.attr::<u32>("ref_ratio").unwrap(), 2);
        let d0 = f.open_dataset("level_0/density").unwrap();
        assert_eq!(d0.read_all::<f64>().unwrap(), rho);
        let d1 = f.open_dataset("level_1/density").unwrap();
        let (_, sp) = d1.meta().unwrap();
        assert_eq!(sp.dims(), &[16, 16, 16]);
        // A refined cell and an unrefined one.
        let v = d1.read_selection::<f64>(&Selection::block(&[0, 0, 0], &[1, 1, 1])).unwrap();
        assert_eq!(v, vec![10.0]);
        let empty = d1.read_selection::<f64>(&Selection::block(&[8, 8, 8], &[1, 1, 1])).unwrap();
        assert_eq!(empty, vec![0.0]);
        f.close().unwrap();
    }
}
