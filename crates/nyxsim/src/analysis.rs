//! Field analysis kernels beyond halo finding: the kinds of statistics a
//! cosmology "spectra" consumer computes from a density snapshot.
//!
//! Both kernels are rank-local with a cheap reduction, so a consumer task
//! can run them on its slab and combine with
//! [`simmpi::Comm::allreduce_vec`] — the analysis workload used by the
//! fan-out example and benches.

/// Histogram of density values over `bins` logarithmically-ish spaced
/// buckets: bucket 0 holds zeros, bucket `k ≥ 1` holds
/// `(mean·2^(k-2), mean·2^(k-1)]` (the first bucket catching everything
/// below the mean). The final bucket is open-ended.
pub fn density_histogram(rho: &[f64], mean: f64, bins: usize) -> Vec<u64> {
    assert!(bins >= 2, "need at least a zero bucket and one value bucket");
    assert!(mean > 0.0, "mean density must be positive");
    let mut hist = vec![0u64; bins];
    for &v in rho {
        if v <= 0.0 {
            hist[0] += 1;
            continue;
        }
        // k such that v ≤ mean·2^(k-1); clamp to the last bucket.
        let ratio = v / mean;
        let k = if ratio <= 1.0 { 1 } else { 2 + ratio.log2().ceil() as usize - 1 };
        hist[k.min(bins - 1)] += 1;
    }
    hist
}

/// Spherically averaged radial density profile around `center`: returns
/// `nbins` mean densities for shells of thickness `max_radius / nbins`,
/// computed over the cells of this slab only (combine sums and counts
/// across ranks for the global profile).
///
/// Returns `(sum, count)` pairs so partial profiles are reducible.
pub fn radial_profile(
    dims: [u64; 3],
    slab: (u64, u64),
    rho: &[f64],
    center: [f64; 3],
    max_radius: f64,
    nbins: usize,
) -> Vec<(f64, u64)> {
    assert!(nbins >= 1 && max_radius > 0.0);
    let (ny, nz) = (dims[1] as usize, dims[2] as usize);
    let mut out = vec![(0.0f64, 0u64); nbins];
    let width = max_radius / nbins as f64;
    for (i, &v) in rho.iter().enumerate() {
        let x = slab.0 as f64 + (i / (ny * nz)) as f64 + 0.5;
        let y = ((i / nz) % ny) as f64 + 0.5;
        let z = (i % nz) as f64 + 0.5;
        let r =
            ((x - center[0]).powi(2) + (y - center[1]).powi(2) + (z - center[2]).powi(2)).sqrt();
        if r >= max_radius {
            continue;
        }
        let b = (r / width) as usize;
        out[b.min(nbins - 1)].0 += v;
        out[b.min(nbins - 1)].1 += 1;
    }
    out
}

/// Finalize a (possibly reduced) profile into mean densities per shell.
pub fn profile_means(partial: &[(f64, u64)]) -> Vec<f64> {
    partial.iter().map(|&(s, c)| if c == 0 { 0.0 } else { s / c as f64 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_overdensity() {
        //            zero  ≤mean (1,2]  (2,4]  open
        let rho = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 100.0];
        let hist = density_histogram(&rho, 1.0, 5);
        assert_eq!(hist.iter().sum::<u64>() as usize, rho.len());
        assert_eq!(hist[0], 1); // the zero
        assert_eq!(hist[1], 2); // 0.5, 1.0
        assert_eq!(hist[2], 2); // 1.5, 2.0
        assert_eq!(hist[3], 1); // 3.0
        assert_eq!(hist[4], 1); // 100 clamped to the open bucket
    }

    #[test]
    fn radial_profile_of_point_mass() {
        let dims = [8u64, 8, 8];
        let mut rho = vec![0.0f64; 512];
        // Mass at cell (4,4,4); center at its cell center.
        rho[(4 * 64 + 4 * 8 + 4) as usize] = 8.0;
        let prof = radial_profile(dims, (0, 8), &rho, [4.5, 4.5, 4.5], 4.0, 4);
        let means = profile_means(&prof);
        // All mass in the innermost shell; outer shells average ~0.
        assert!(means[0] > 0.0);
        assert_eq!(means[1], 0.0);
        assert_eq!(means[2], 0.0);
        // Every nearby cell is counted exactly once.
        let total: u64 = prof.iter().map(|&(_, c)| c).sum();
        assert!(total > 0 && total <= 512);
    }

    #[test]
    fn radial_profile_reduces_across_slabs() {
        let dims = [8u64, 4, 4];
        let rho_full = vec![2.0f64; 128];
        let center = [4.0, 2.0, 2.0];
        let whole = radial_profile(dims, (0, 8), &rho_full, center, 4.0, 4);
        // Split into two slabs and sum the partials.
        let a = radial_profile(dims, (0, 4), &rho_full[..64], center, 4.0, 4);
        let b = radial_profile(dims, (4, 8), &rho_full[64..], center, 4.0, 4);
        for k in 0..4 {
            assert!((a[k].0 + b[k].0 - whole[k].0).abs() < 1e-12);
            assert_eq!(a[k].1 + b[k].1, whole[k].1);
        }
        // Uniform field → every populated shell has mean 2.
        for m in profile_means(&whole) {
            assert!(m == 0.0 || (m - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn histogram_on_simulated_field_is_heavy_tailed() {
        use crate::sim::{NyxSim, SimConfig};
        let cfg =
            SimConfig { grid: 24, nranks: 1, particles_per_rank: 40_000, centers: 3, seed: 3 };
        let sim = NyxSim::new(cfg, 0);
        let rho = sim.deposit();
        let mean = 40_000.0 / rho.len() as f64;
        let hist = density_histogram(&rho, mean, 12);
        // A clustered field populates the high-overdensity tail.
        assert!(hist[8..].iter().sum::<u64>() > 0, "{hist:?}");
        // And most cells sit at or below the mean.
        assert!(hist[0] + hist[1] > rho.len() as u64 / 2, "{hist:?}");
    }
}
