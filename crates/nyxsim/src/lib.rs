//! # nyxsim — a cosmology-workflow stand-in for Nyx + Reeber
//!
//! The paper's science use case (§IV-C) couples the Nyx cosmological
//! simulation (an AMReX adaptive-mesh code) in situ with the Reeber halo
//! finder, comparing three I/O paths: a single shared HDF5 file, AMReX
//! *plotfiles*, and LowFive in-memory transport. None of those codes are
//! available here, so this crate rebuilds the workload from scratch with
//! the properties Table II actually exercises:
//!
//! * [`sim`] — a particle-mesh dark-matter toy: seeded particles cluster
//!   around halo centers, deposit density onto a slab-decomposed 3-d
//!   grid, and drift toward the centers each step, producing a field with
//!   pronounced overdensities (halos) that grow over time,
//! * [`amr`] — a two-level AMReX-style mesh: cells above a refinement
//!   threshold get 2× refined patches, mirroring the multi-resolution
//!   structure whose *metadata-aware filtering* motivates the paper's
//!   introduction (the analysis reads one variable at one resolution),
//! * [`halo`] — a Reeber substitute: a merge-tree-flavored sweep
//!   (cells processed in decreasing density order, union-find over
//!   already-seen neighbors) that segments the field into halos above a
//!   density threshold and reports count/mass/peak per halo,
//! * [`plotfile`] — AMReX-style plotfiles: a text header plus one binary
//!   data file per group of ranks, written concurrently,
//! * a writer ([`sim::write_snapshot`]) that emits snapshots **through the
//!   `minih5` H5 API**, so the same unmodified code writes to disk or
//!   streams through LowFive depending on the installed VOL — the paper's
//!   zero-code-change claim, reproduced structurally. The AMReX behavior
//!   of *repacking* data before writing (which defeats LowFive's
//!   zero-copy; see the paper's "Lessons Learned") is reproduced with
//!   [`sim::WriteOptions::repack`].

pub mod amr;
pub mod analysis;
pub mod halo;
pub mod halo_dist;
pub mod plotfile;
pub mod sim;

pub use amr::AmrHierarchy;
pub use halo::{find_halos, Halo};
pub use halo_dist::find_halos_distributed;
pub use sim::{Deposits, NyxSim, SimConfig, WriteOptions};
