//! The particle-mesh dark-matter toy simulation.
//!
//! Physics fidelity is not the point — Table II measures I/O — but the
//! field must be *shaped* like a cosmology snapshot: large, slab-
//! decomposed, and carrying halo-like overdensities that an analysis task
//! genuinely has to work to find. Particles are seeded around shared
//! cluster centers plus a uniform background, deposited with
//! nearest-grid-point (NGP) weighting, and drift toward their nearest
//! center each step so halos sharpen over time.

use bytes::Bytes;
use minih5::{Dataspace, Datatype, Ownership, Selection, H5};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use minih5::H5Result;

/// Simulation parameters shared by all ranks.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Grid cells per side (the paper sweeps 256³ … 2048³; scaled here).
    pub grid: u64,
    /// Number of producer ranks; the grid is slab-decomposed along x.
    pub nranks: usize,
    /// Particles per rank.
    pub particles_per_rank: usize,
    /// Number of cluster centers (halo seeds) in the global domain.
    pub centers: usize,
    /// PRNG seed; centers derive from it identically on every rank.
    pub seed: u64,
}

impl SimConfig {
    /// x-slab `[lo, hi)` owned by `rank`.
    pub fn slab(&self, rank: usize) -> (u64, u64) {
        let n = self.nranks as u64;
        (self.grid * rank as u64 / n, self.grid * (rank as u64 + 1) / n)
    }
}

/// One rank's share of the simulation.
pub struct NyxSim {
    cfg: SimConfig,
    rank: usize,
    /// Particle positions in grid units, x within this rank's slab.
    particles: Vec<[f64; 3]>,
    /// Particle velocities (grid units per step).
    velocities: Vec<[f64; 3]>,
    /// Cluster centers (identical on every rank).
    centers: Vec<[f64; 3]>,
    step: u64,
}

impl NyxSim {
    /// Initialize rank `rank`'s particles: 70% clustered around the
    /// centers whose x falls in this slab, 30% uniform background.
    pub fn new(cfg: SimConfig, rank: usize) -> Self {
        assert!(rank < cfg.nranks);
        let mut crng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let g = cfg.grid as f64;
        let centers: Vec<[f64; 3]> = (0..cfg.centers)
            .map(|_| [crng.gen::<f64>() * g, crng.gen::<f64>() * g, crng.gen::<f64>() * g])
            .collect();
        let (lo, hi) = cfg.slab(rank);
        let (lo_f, hi_f) = (lo as f64, hi as f64);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9));
        let my_centers: Vec<[f64; 3]> =
            centers.iter().copied().filter(|c| c[0] >= lo_f && c[0] < hi_f).collect();
        let mut particles = Vec::with_capacity(cfg.particles_per_rank);
        for _ in 0..cfg.particles_per_rank {
            let p = if !my_centers.is_empty() && rng.gen::<f64>() < 0.7 {
                // Gaussian-ish blob around a random local center
                // (sum of uniforms ≈ normal; cheap and seedable).
                let c = my_centers[rng.gen_range(0..my_centers.len())];
                let spread = g / 32.0;
                let mut coord = [0.0f64; 3];
                for (i, x) in coord.iter_mut().enumerate() {
                    let jitter: f64 =
                        (0..4).map(|_| rng.gen::<f64>() - 0.5).sum::<f64>() / 2.0 * spread;
                    *x = c[i] + jitter;
                }
                coord
            } else {
                [
                    lo_f + rng.gen::<f64>() * (hi_f - lo_f),
                    rng.gen::<f64>() * g,
                    rng.gen::<f64>() * g,
                ]
            };
            particles.push(clamp_to_slab(p, lo_f, hi_f, g));
        }
        let velocities = vec![[0.0; 3]; particles.len()];
        NyxSim { cfg, rank, particles, velocities, centers, step: 0 }
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn step_number(&self) -> u64 {
        self.step
    }

    /// Advance one timestep: every particle drifts 10% of the way toward
    /// its nearest cluster center (a crude stand-in for gravity), clamped
    /// to the slab.
    pub fn step(&mut self) {
        let centers = &self.centers;
        let g = self.cfg.grid as f64;
        let (lo, hi) = self.cfg.slab(self.rank);
        let (lo_f, hi_f) = (lo as f64, hi as f64);
        self.particles.par_iter_mut().zip(self.velocities.par_iter_mut()).for_each(|(p, v)| {
            let nearest = centers
                .iter()
                .min_by(|a, b| dist2(p, a).partial_cmp(&dist2(p, b)).expect("finite distances"))
                .expect("at least one center");
            for i in 0..3 {
                v[i] = (nearest[i] - p[i]) * 0.1;
                p[i] += v[i];
            }
            *p = clamp_to_slab(*p, lo_f, hi_f, g);
        });
        self.step += 1;
    }

    /// Deposit the local particles onto this rank's x-slab with NGP
    /// weighting. Returns the slab density field, row-major over
    /// `(slab_len, grid, grid)`.
    pub fn deposit(&self) -> Vec<f64> {
        self.deposit_all().density
    }

    /// Deposit all per-cell field variables at once: density (particle
    /// count), momentum magnitude (Σ|v|), and kinetic energy (Σ½|v|²).
    /// Real cosmology snapshots carry "a dozen variables"; these three
    /// let the benchmarks show that an analysis consuming only `density`
    /// never moves the others.
    pub fn deposit_all(&self) -> Deposits {
        let (lo, hi) = self.cfg.slab(self.rank);
        let g = self.cfg.grid;
        let slab_len = (hi - lo) as usize;
        let ncells = slab_len * (g * g) as usize;
        let mut out = Deposits {
            density: vec![0.0f64; ncells],
            momentum: vec![0.0f64; ncells],
            energy: vec![0.0f64; ncells],
        };
        for (p, v) in self.particles.iter().zip(&self.velocities) {
            let x = (p[0] as u64).min(self.cfg.grid - 1).max(lo).min(hi - 1);
            let y = (p[1] as u64).min(g - 1);
            let z = (p[2] as u64).min(g - 1);
            let idx = ((x - lo) * g * g + y * g + z) as usize;
            let speed2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
            out.density[idx] += 1.0;
            out.momentum[idx] += speed2.sqrt();
            out.energy[idx] += 0.5 * speed2;
        }
        out
    }
}

/// The per-cell field variables of one snapshot slab.
pub struct Deposits {
    pub density: Vec<f64>,
    pub momentum: Vec<f64>,
    pub energy: Vec<f64>,
}

fn dist2(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    (0..3).map(|i| (a[i] - b[i]) * (a[i] - b[i])).sum()
}

fn clamp_to_slab(mut p: [f64; 3], lo: f64, hi: f64, g: f64) -> [f64; 3] {
    p[0] = p[0].clamp(lo, hi - 1e-9);
    p[1] = p[1].rem_euclid(g);
    p[2] = p[2].rem_euclid(g);
    p
}

/// How a snapshot is written.
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Repack (copy) the slab into a fresh I/O buffer before writing,
    /// as the AMReX HDF5 writer does — this is what forced LowFive to
    /// deep-copy in the paper and allowed "up to three copies of the same
    /// data" to coexist.
    pub repack: bool,
    /// Request zero-copy (shallow) handoff of the write buffer. Only
    /// effective when `repack` is false; a repacked buffer is transient
    /// and must be deep-copied by the transport.
    pub zero_copy: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions { repack: true, zero_copy: false }
    }
}

/// Write one snapshot through the H5 API (whatever VOL is installed):
///
/// ```text
/// <name>
/// └── level_0
///     └── density   (f64, [grid, grid, grid]), attrs: step, time
/// ```
///
/// Every rank writes its slab selection; metadata calls are collective.
/// Returns the bytes written by this rank.
pub fn write_snapshot(
    h5: &H5,
    name: &str,
    sim: &NyxSim,
    rho: &[f64],
    opts: WriteOptions,
) -> H5Result<u64> {
    let g = sim.cfg.grid;
    let (lo, hi) = sim.cfg.slab(sim.rank);
    let f = h5.create_file(name)?;
    let level0 = f.create_group("level_0")?;
    let d = level0.create_dataset("density", Datatype::Float64, Dataspace::simple(&[g, g, g]))?;
    d.set_attr("step", sim.step)?;
    d.set_attr("time", sim.step as f64 * 0.05)?;
    let sel = Selection::block(&[lo, 0, 0], &[hi - lo, g, g]);
    let nbytes = (rho.len() * 8) as u64;
    if opts.repack {
        // AMReX-style repack: copy into a fresh, transient I/O buffer.
        let repacked: Vec<f64> = rho.to_vec();
        d.write_selection(&sel, &repacked)?;
    } else if opts.zero_copy {
        let bytes = Bytes::copy_from_slice(minih5::datatype::elems_as_bytes(rho));
        // The Bytes buffer above is the canonical allocation handed to the
        // transport; Shallow keeps a reference instead of another copy.
        d.write_bytes(&sel, bytes, Ownership::Shallow)?;
    } else {
        d.write_selection(&sel, rho)?;
    }
    f.close()?;
    Ok(nbytes)
}

/// Write a multi-variable snapshot: `level_0/{density, momentum, energy}`
/// plus attributes. An analysis that opens only `level_0/density` never
/// causes the other variables to move through the transport.
pub fn write_snapshot_multi(
    h5: &H5,
    name: &str,
    sim: &NyxSim,
    fields: &Deposits,
    opts: WriteOptions,
) -> H5Result<u64> {
    let g = sim.cfg.grid;
    let (lo, hi) = sim.cfg.slab(sim.rank);
    let f = h5.create_file(name)?;
    let level0 = f.create_group("level_0")?;
    let sel = Selection::block(&[lo, 0, 0], &[hi - lo, g, g]);
    let mut written = 0u64;
    for (var, data) in
        [("density", &fields.density), ("momentum", &fields.momentum), ("energy", &fields.energy)]
    {
        let d = level0.create_dataset(var, Datatype::Float64, Dataspace::simple(&[g, g, g]))?;
        d.set_attr("step", sim.step)?;
        if opts.repack {
            let repacked: Vec<f64> = data.to_vec();
            d.write_selection(&sel, &repacked)?;
        } else {
            let bytes = Bytes::copy_from_slice(minih5::datatype::elems_as_bytes(data));
            let own = if opts.zero_copy { Ownership::Shallow } else { Ownership::Deep };
            d.write_bytes(&sel, bytes, own)?;
        }
        written += (data.len() * 8) as u64;
    }
    f.close()?;
    Ok(written)
}

/// Read one snapshot slab through the H5 API: returns the density values
/// of x-rows `[lo, hi)`.
pub fn read_snapshot_slab(h5: &H5, name: &str, lo: u64, hi: u64) -> H5Result<(u64, Vec<f64>)> {
    let f = h5.open_file(name)?;
    let d = f.open_dataset("level_0/density")?;
    let (_, space) = d.meta()?;
    let g = space.dims()[0];
    let sel = Selection::block(&[lo, 0, 0], &[hi - lo, g, g]);
    let data = d.read_selection::<f64>(&sel)?;
    let step = d.attr::<u64>("step")?;
    f.close()?;
    Ok((step, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig { grid: 32, nranks: 4, particles_per_rank: 5000, centers: 4, seed: 42 }
    }

    #[test]
    fn slabs_partition_grid() {
        let c = cfg();
        let mut total = 0;
        for r in 0..c.nranks {
            let (lo, hi) = c.slab(r);
            total += hi - lo;
            if r > 0 {
                assert_eq!(c.slab(r - 1).1, lo);
            }
        }
        assert_eq!(total, c.grid);
    }

    #[test]
    fn deposit_conserves_mass() {
        let c = cfg();
        for r in 0..c.nranks {
            let sim = NyxSim::new(c.clone(), r);
            let rho = sim.deposit();
            let mass: f64 = rho.iter().sum();
            assert_eq!(mass as usize, c.particles_per_rank, "rank {r}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cfg();
        let a = NyxSim::new(c.clone(), 1).deposit();
        let b = NyxSim::new(c.clone(), 1).deposit();
        assert_eq!(a, b);
        // Different ranks differ.
        let other = NyxSim::new(c, 2).deposit();
        assert_ne!(a, other);
    }

    #[test]
    fn stepping_sharpens_halos() {
        let c = cfg();
        let mut sim = NyxSim::new(c, 0);
        let before = sim.deposit();
        let max_before = before.iter().cloned().fold(0.0f64, f64::max);
        for _ in 0..5 {
            sim.step();
        }
        let after = sim.deposit();
        let max_after = after.iter().cloned().fold(0.0f64, f64::max);
        // Drift toward centers concentrates mass.
        assert!(max_after >= max_before, "{max_after} vs {max_before}");
        assert_eq!(sim.step_number(), 5);
    }

    #[test]
    fn field_is_clustered_not_uniform() {
        let c = SimConfig { grid: 32, nranks: 1, particles_per_rank: 50_000, centers: 3, seed: 7 };
        let sim = NyxSim::new(c, 0);
        let rho = sim.deposit();
        let mean = 50_000.0 / rho.len() as f64;
        let max = rho.iter().cloned().fold(0.0f64, f64::max);
        // A clustered field has peaks far above the mean.
        assert!(max > 20.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn snapshot_roundtrip_through_native_vol() {
        let dir = std::env::temp_dir().join("nyxsim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.nh5").to_str().unwrap().to_string();
        let c = SimConfig { grid: 16, nranks: 1, particles_per_rank: 1000, centers: 2, seed: 1 };
        let sim = NyxSim::new(c, 0);
        let rho = sim.deposit();
        let h5 = H5::native();
        write_snapshot(&h5, &path, &sim, &rho, WriteOptions::default()).unwrap();
        let (step, back) = read_snapshot_slab(&h5, &path, 0, 16).unwrap();
        assert_eq!(step, 0);
        assert_eq!(back, rho);
        // Partial slab too.
        let (_, part) = read_snapshot_slab(&h5, &path, 4, 8).unwrap();
        assert_eq!(part.len(), 4 * 16 * 16);
        assert_eq!(&part[..], &rho[4 * 256..8 * 256]);
    }
}

#[cfg(test)]
mod multivar_tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig { grid: 16, nranks: 2, particles_per_rank: 3000, centers: 3, seed: 5 }
    }

    #[test]
    fn velocities_start_cold_then_heat_up() {
        let mut sim = NyxSim::new(cfg(), 0);
        let d0 = sim.deposit_all();
        assert_eq!(d0.energy.iter().sum::<f64>(), 0.0);
        assert_eq!(d0.momentum.iter().sum::<f64>(), 0.0);
        sim.step();
        let d1 = sim.deposit_all();
        assert!(d1.energy.iter().sum::<f64>() > 0.0);
        assert!(d1.momentum.iter().sum::<f64>() > 0.0);
        // Density still conserves mass.
        assert_eq!(d1.density.iter().sum::<f64>() as usize, 3000);
    }

    #[test]
    fn multivar_snapshot_roundtrip() {
        let dir = std::env::temp_dir().join("nyxsim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("multi.nh5").to_str().unwrap().to_string();
        let c = SimConfig { grid: 8, nranks: 1, particles_per_rank: 500, centers: 2, seed: 9 };
        let mut sim = NyxSim::new(c, 0);
        sim.step();
        let fields = sim.deposit_all();
        let h5 = H5::native();
        let written =
            write_snapshot_multi(&h5, &path, &sim, &fields, WriteOptions::default()).unwrap();
        assert_eq!(written, 3 * 512 * 8);
        let f = h5.open_file(&path).unwrap();
        for (var, expect) in [
            ("density", &fields.density),
            ("momentum", &fields.momentum),
            ("energy", &fields.energy),
        ] {
            let d = f.open_dataset(&format!("level_0/{var}")).unwrap();
            assert_eq!(&d.read_all::<f64>().unwrap(), expect);
            assert_eq!(d.attr::<u64>("step").unwrap(), 1);
        }
        f.close().unwrap();
    }
}
