//! The Reeber substitute: merge-tree-flavored halo finding.
//!
//! Reeber identifies "regions of high density, called halos" via
//! distributed merge trees. This substitute keeps the algorithmic flavor
//! at laptop scale: cells above a density threshold are processed in
//! **decreasing density order**, each union-finding with already-processed
//! (i.e. denser) face neighbors — exactly the sweep that builds a merge
//! tree's super-level sets. Each resulting component is a halo rooted at
//! its density peak.

/// One halo: a connected super-level-set component.
#[derive(Debug, Clone, PartialEq)]
pub struct Halo {
    /// Number of cells in the component.
    pub cells: u64,
    /// Total deposited mass (sum of density over the component).
    pub mass: f64,
    /// Grid coordinates of the density peak.
    pub peak: [u64; 3],
    /// Density at the peak.
    pub peak_density: f64,
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
        ra
    }
}

/// Find all halos in a `dims`-shaped density field (row-major) with
/// density `> threshold`, keeping only components of at least `min_cells`
/// cells. Halos are returned in decreasing mass order.
pub fn find_halos(dims: [u64; 3], rho: &[f64], threshold: f64, min_cells: u64) -> Vec<Halo> {
    let (nx, ny, nz) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
    assert_eq!(rho.len(), nx * ny * nz, "field size matches dims");
    // Candidate cells above threshold, densest first — the merge-tree
    // sweep order.
    let mut candidates: Vec<u32> =
        (0..rho.len() as u32).filter(|&i| rho[i as usize] > threshold).collect();
    candidates.sort_unstable_by(|&a, &b| {
        rho[b as usize].partial_cmp(&rho[a as usize]).expect("finite densities").then(a.cmp(&b))
    });

    let mut uf = UnionFind::new(rho.len());
    let mut in_set = vec![false; rho.len()];
    for &c in &candidates {
        in_set[c as usize] = true;
        let i = c as usize;
        let (x, y, z) = (i / (ny * nz), (i / nz) % ny, i % nz);
        // Union with already-seen (denser) face neighbors.
        let mut try_join = |j: usize| {
            if in_set[j] && j != i {
                uf.union(c, j as u32);
            }
        };
        if x > 0 {
            try_join(i - ny * nz);
        }
        if x + 1 < nx {
            try_join(i + ny * nz);
        }
        if y > 0 {
            try_join(i - nz);
        }
        if y + 1 < ny {
            try_join(i + nz);
        }
        if z > 0 {
            try_join(i - 1);
        }
        if z + 1 < nz {
            try_join(i + 1);
        }
    }

    // Aggregate component statistics.
    use std::collections::HashMap;
    let mut stats: HashMap<u32, Halo> = HashMap::new();
    for &c in &candidates {
        let root = uf.find(c);
        let i = c as usize;
        let coord = [(i / (ny * nz)) as u64, ((i / nz) % ny) as u64, (i % nz) as u64];
        let e = stats.entry(root).or_insert(Halo {
            cells: 0,
            mass: 0.0,
            peak: coord,
            peak_density: f64::NEG_INFINITY,
        });
        e.cells += 1;
        e.mass += rho[i];
        if rho[i] > e.peak_density {
            e.peak_density = rho[i];
            e.peak = coord;
        }
    }
    let mut halos: Vec<Halo> = stats.into_values().filter(|h| h.cells >= min_cells).collect();
    halos.sort_by(|a, b| b.mass.partial_cmp(&a.mass).expect("finite masses"));
    halos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(dims: [u64; 3]) -> Vec<f64> {
        vec![0.0; (dims[0] * dims[1] * dims[2]) as usize]
    }

    fn set(rho: &mut [f64], dims: [u64; 3], c: [u64; 3], v: f64) {
        let i = (c[0] * dims[1] * dims[2] + c[1] * dims[2] + c[2]) as usize;
        rho[i] = v;
    }

    #[test]
    fn empty_field_has_no_halos() {
        let dims = [8, 8, 8];
        assert!(find_halos(dims, &field(dims), 0.5, 1).is_empty());
    }

    #[test]
    fn two_separated_blobs() {
        let dims = [16, 16, 16];
        let mut rho = field(dims);
        // Blob A: 2x2x2 at (2,2,2) with peak 10.
        for x in 2..4 {
            for y in 2..4 {
                for z in 2..4 {
                    set(&mut rho, dims, [x, y, z], 5.0);
                }
            }
        }
        set(&mut rho, dims, [2, 2, 2], 10.0);
        // Blob B: single hot cell far away.
        set(&mut rho, dims, [12, 12, 12], 8.0);
        let halos = find_halos(dims, &rho, 1.0, 1);
        assert_eq!(halos.len(), 2);
        // Mass-ordered: blob A first (7*5 + 10 = 45).
        assert_eq!(halos[0].cells, 8);
        assert_eq!(halos[0].mass, 45.0);
        assert_eq!(halos[0].peak, [2, 2, 2]);
        assert_eq!(halos[0].peak_density, 10.0);
        assert_eq!(halos[1].cells, 1);
        assert_eq!(halos[1].peak, [12, 12, 12]);
    }

    #[test]
    fn touching_cells_merge_into_one_halo() {
        let dims = [8, 8, 8];
        let mut rho = field(dims);
        // An L-shaped face-connected component.
        for c in [[1, 1, 1], [1, 1, 2], [1, 2, 2], [2, 2, 2]] {
            set(&mut rho, dims, c, 3.0);
        }
        let halos = find_halos(dims, &rho, 1.0, 1);
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].cells, 4);
    }

    #[test]
    fn diagonal_cells_do_not_merge() {
        let dims = [8, 8, 8];
        let mut rho = field(dims);
        set(&mut rho, dims, [1, 1, 1], 3.0);
        set(&mut rho, dims, [2, 2, 2], 3.0); // corner-adjacent only
        assert_eq!(find_halos(dims, &rho, 1.0, 1).len(), 2);
    }

    #[test]
    fn threshold_filters_background() {
        let dims = [8, 8, 8];
        let mut rho = vec![0.4; 512];
        set(&mut rho, dims, [4, 4, 4], 2.0);
        let halos = find_halos(dims, &rho, 0.5, 1);
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].cells, 1);
    }

    #[test]
    fn min_cells_filters_specks() {
        let dims = [8, 8, 8];
        let mut rho = field(dims);
        set(&mut rho, dims, [0, 0, 0], 5.0); // speck
        for z in 0..4 {
            set(&mut rho, dims, [4, 4, z], 5.0); // 4-cell rod
        }
        let halos = find_halos(dims, &rho, 1.0, 2);
        assert_eq!(halos.len(), 1);
        assert_eq!(halos[0].cells, 4);
    }

    #[test]
    fn finds_sim_halos() {
        // End-to-end with the particle-mesh sim: the deposited field's
        // components above a high threshold match the seeded centers to
        // within reason (some centers can merge or sit in one slab).
        use crate::sim::{NyxSim, SimConfig};
        let cfg =
            SimConfig { grid: 32, nranks: 1, particles_per_rank: 100_000, centers: 3, seed: 11 };
        let sim = NyxSim::new(cfg, 0);
        let rho = sim.deposit();
        let mean = 100_000.0 / rho.len() as f64;
        let halos = find_halos([32, 32, 32], &rho, 8.0 * mean, 2);
        assert!(!halos.is_empty(), "no halos found");
        assert!(halos.len() <= 6, "too many components: {}", halos.len());
        // The heaviest halo should contain a decent share of the mass.
        assert!(halos[0].mass > 1000.0);
    }
}
