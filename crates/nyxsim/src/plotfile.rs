//! AMReX-style plotfiles.
//!
//! The paper's third I/O path: "plotfiles, a binary format specifically
//! designed by AMReX developers to be optimized for large-scale
//! simulations. Here the data are split into separate files among groups
//! of simulation processes." A plotfile here is a directory:
//!
//! ```text
//! plt00001/
//!   Header              — text: dims, rank count, group size, slab table
//!   Level_0/Cell_D_00000 — binary f64 data of ranks in group 0
//!   Level_0/Cell_D_00001 — … group 1, etc.
//! ```
//!
//! Within a group file each rank writes at a deterministic offset, so all
//! ranks of a group write concurrently without coordination beyond the
//! initial directory-creation barrier.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Per-rank x-slab `[lo, hi)` table; index = rank.
pub type SlabTable = Vec<(u64, u64)>;

fn group_file(dir: &Path, group: usize) -> PathBuf {
    dir.join("Level_0").join(format!("Cell_D_{group:05}"))
}

fn slab_bytes(slab: (u64, u64), dims: [u64; 3]) -> u64 {
    (slab.1 - slab.0) * dims[1] * dims[2] * 8
}

/// Write one rank's slab into the plotfile.
///
/// `barrier` must synchronize all writer ranks (rank 0 creates the
/// directory tree and header before anyone writes). Returns bytes
/// written by this rank.
pub fn write_plotfile(
    dir: &Path,
    dims: [u64; 3],
    slabs: &SlabTable,
    rank: usize,
    group_size: usize,
    data: &[f64],
    barrier: impl Fn(),
) -> io::Result<u64> {
    assert!(group_size > 0);
    assert_eq!(data.len() as u64 * 8, slab_bytes(slabs[rank], dims), "slab data size");
    if rank == 0 {
        std::fs::create_dir_all(dir.join("Level_0"))?;
        let mut h = File::create(dir.join("Header"))?;
        writeln!(h, "NyxSimPlotfile-v1")?;
        writeln!(h, "{} {} {}", dims[0], dims[1], dims[2])?;
        writeln!(h, "{} {}", slabs.len(), group_size)?;
        for (lo, hi) in slabs {
            writeln!(h, "{lo} {hi}")?;
        }
        h.sync_data()?;
    }
    barrier();
    let group = rank / group_size;
    // Offset of this rank inside its group file.
    let group_start = group * group_size;
    let offset: u64 = (group_start..rank).map(|r| slab_bytes(slabs[r], dims)).sum();
    // No truncate: every rank of the group pwrites its own disjoint slab.
    let f =
        OpenOptions::new().write(true).create(true).truncate(false).open(group_file(dir, group))?;
    let bytes: &[u8] = unsafe {
        // SAFETY: f64 slab exposed as bytes for I/O; plain data.
        std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), data.len() * 8)
    };
    f.write_all_at(bytes, offset)?;
    f.sync_data()?;
    barrier();
    Ok(bytes.len() as u64)
}

/// Read an entire plotfile (serial). Returns `(dims, slab table, fields)`
/// where `fields[rank]` is that rank's slab data.
///
/// The paper deliberately excluded plotfile *read* time from Table II
/// ("code for reading plotfiles was not optimized"); this reader is the
/// straightforward serial loop and is likewise excluded from the speedup
/// columns in the bench harness.
pub fn read_plotfile(dir: &Path) -> io::Result<([u64; 3], SlabTable, Vec<Vec<f64>>)> {
    let mut text = String::new();
    File::open(dir.join("Header"))?.read_to_string(&mut text)?;
    let mut lines = text.lines();
    let magic = lines.next().unwrap_or_default();
    if magic != "NyxSimPlotfile-v1" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad plotfile magic"));
    }
    let parse_err = || io::Error::new(io::ErrorKind::InvalidData, "malformed plotfile header");
    let dims_line = lines.next().ok_or_else(parse_err)?;
    let mut it = dims_line.split_whitespace().map(|s| s.parse::<u64>());
    let dims = [
        it.next().ok_or_else(parse_err)?.map_err(|_| parse_err())?,
        it.next().ok_or_else(parse_err)?.map_err(|_| parse_err())?,
        it.next().ok_or_else(parse_err)?.map_err(|_| parse_err())?,
    ];
    let counts = lines.next().ok_or_else(parse_err)?;
    let mut it = counts.split_whitespace().map(|s| s.parse::<usize>());
    let nranks = it.next().ok_or_else(parse_err)?.map_err(|_| parse_err())?;
    let group_size = it.next().ok_or_else(parse_err)?.map_err(|_| parse_err())?;
    let mut slabs = SlabTable::with_capacity(nranks);
    for _ in 0..nranks {
        let line = lines.next().ok_or_else(parse_err)?;
        let mut it = line.split_whitespace().map(|s| s.parse::<u64>());
        slabs.push((
            it.next().ok_or_else(parse_err)?.map_err(|_| parse_err())?,
            it.next().ok_or_else(parse_err)?.map_err(|_| parse_err())?,
        ));
    }
    let mut fields = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        let group = rank / group_size;
        let group_start = group * group_size;
        let offset: u64 = (group_start..rank).map(|r| slab_bytes(slabs[r], dims)).sum();
        let nbytes = slab_bytes(slabs[rank], dims) as usize;
        let f = File::open(group_file(dir, group))?;
        let mut buf = vec![0u8; nbytes];
        f.read_exact_at(&mut buf, offset)?;
        let vals: Vec<f64> = buf
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        fields.push(vals);
    }
    Ok((dims, slabs, fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::World;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("nyxsim-plotfile-test").join(name);
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn parallel_write_serial_read_roundtrip() {
        let dims = [8u64, 4, 4];
        let nranks = 4;
        let slabs: SlabTable = (0..nranks).map(|r| (r as u64 * 2, r as u64 * 2 + 2)).collect();
        let dir = tmpdir("roundtrip");
        let dir2 = dir.clone();
        let slabs2 = slabs.clone();
        World::run(nranks, move |c| {
            let rank = c.rank();
            let n = slab_bytes(slabs2[rank], dims) as usize / 8;
            let data: Vec<f64> = (0..n).map(|i| (rank * 1000 + i) as f64).collect();
            let cb = c.clone();
            write_plotfile(&dir2, dims, &slabs2, rank, 2, &data, move || cb.barrier()).unwrap();
        });
        let (rdims, rslabs, fields) = read_plotfile(&dir).unwrap();
        assert_eq!(rdims, dims);
        assert_eq!(rslabs, slabs);
        assert_eq!(fields.len(), nranks);
        for (rank, field) in fields.iter().enumerate() {
            assert_eq!(field.len(), 32);
            assert_eq!(field[0], (rank * 1000) as f64);
            assert_eq!(field[31], (rank * 1000 + 31) as f64);
        }
        // Two groups of two ranks → two data files.
        assert!(group_file(&dir, 0).exists());
        assert!(group_file(&dir, 1).exists());
        assert!(!group_file(&dir, 2).exists());
    }

    #[test]
    fn uneven_slabs() {
        let dims = [7u64, 2, 2];
        let slabs: SlabTable = vec![(0, 3), (3, 7)];
        let dir = tmpdir("uneven");
        let dir2 = dir.clone();
        let slabs2 = slabs.clone();
        World::run(2, move |c| {
            let rank = c.rank();
            let n = slab_bytes(slabs2[rank], dims) as usize / 8;
            let data = vec![rank as f64 + 0.5; n];
            let cb = c.clone();
            write_plotfile(&dir2, dims, &slabs2, rank, 4, &data, move || cb.barrier()).unwrap();
        });
        let (_, _, fields) = read_plotfile(&dir).unwrap();
        assert_eq!(fields[0].len(), 12);
        assert_eq!(fields[1].len(), 16);
        assert!(fields[1].iter().all(|&v| v == 1.5));
    }

    #[test]
    fn rejects_garbage_header() {
        let dir = tmpdir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("Header"), "not a plotfile\n").unwrap();
        assert!(read_plotfile(&dir).is_err());
    }
}
