//! The paper's introductory motivation, measured: a simulation writes
//! several variables; an analysis that reads only one variable must only
//! move (roughly) that variable's bytes — "the other datasets not needed
//! by the consumer would never actually have to be written, i.e., sent."

use std::sync::Arc;

use lowfive::DistVolBuilder;
use minih5::{Selection, Vol, H5};
use nyxsim::sim::{write_snapshot_multi, NyxSim, SimConfig, WriteOptions};
use simmpi::{TaskSpec, TaskWorld};

#[test]
fn only_the_consumed_variable_moves() {
    const G: u64 = 24;
    const PRODUCERS: usize = 3;
    let cfg =
        SimConfig { grid: G, nranks: PRODUCERS, particles_per_rank: 10_000, centers: 3, seed: 13 };
    let specs = [TaskSpec::new("sim", PRODUCERS), TaskSpec::new("analysis", 1)];
    let cfg2 = cfg.clone();
    let out = TaskWorld::run_with(&specs, None, move |tc| {
        let producers: Vec<usize> = (0..PRODUCERS).collect();
        let consumers = vec![PRODUCERS];
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);
        if tc.task_id == 0 {
            let mut sim = NyxSim::new(cfg2.clone(), tc.local.rank());
            sim.step();
            let fields = sim.deposit_all();
            // Zero-copy so the transport only ships what is read.
            write_snapshot_multi(
                &h5,
                "snap",
                &sim,
                &fields,
                WriteOptions { repack: false, zero_copy: true },
            )
            .unwrap();
        } else {
            let f = h5.open_file("snap").unwrap();
            // The analysis consumes ONLY the density variable.
            let d = f.open_dataset("level_0/density").unwrap();
            let rho: Vec<f64> = d.read_selection(&Selection::all()).unwrap();
            assert_eq!(rho.iter().sum::<f64>() as usize, PRODUCERS * 10_000);
            f.close().unwrap();
        }
    });
    // All three variables total 3 * G³ * 8 bytes; only density (1/3)
    // should cross the transport, plus metadata/control traffic.
    let one_var = G * G * G * 8;
    assert!(
        out.stats.bytes < one_var * 2,
        "moved {} bytes; a single variable is {} bytes",
        out.stats.bytes,
        one_var
    );
    assert!(out.stats.bytes >= one_var, "must at least move the density variable");
}
