//! Regular block decomposition of a d-dimensional domain.

use minih5::BBox;

use crate::factor::factor_count;

/// Cuts the domain `[0, dims[i])` into a regular grid of blocks whose
/// per-dimension counts come from [`factor_count`] (paper Fig. 4's
/// "common decomposition"). Block global ids (gids) number blocks in
/// row-major order of their grid coordinates; the i-th producer process is
/// responsible for the i-th block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegularDecomposer {
    dims: Vec<u64>,
    /// Blocks per dimension.
    counts: Vec<usize>,
}

impl RegularDecomposer {
    /// Decompose `dims` into exactly `nblocks` blocks.
    ///
    /// # Panics
    /// Panics if `dims` is empty or `nblocks == 0`.
    pub fn new(dims: &[u64], nblocks: usize) -> Self {
        assert!(!dims.is_empty(), "domain must have at least one dimension");
        let counts = factor_count(nblocks, dims.len());
        RegularDecomposer { dims: dims.to_vec(), counts }
    }

    /// Total number of blocks.
    pub fn nblocks(&self) -> usize {
        self.counts.iter().product()
    }

    /// Blocks per dimension.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The domain shape.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Grid coordinates of block `gid` (row-major).
    pub fn block_coords(&self, gid: usize) -> Vec<usize> {
        assert!(gid < self.nblocks(), "gid {gid} out of range");
        let mut rem = gid;
        let mut coords = vec![0usize; self.counts.len()];
        for i in (0..self.counts.len()).rev() {
            coords[i] = rem % self.counts[i];
            rem /= self.counts[i];
        }
        coords
    }

    /// Gid of the block at grid coordinates `coords`.
    pub fn gid_of_coords(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.counts.len());
        coords.iter().zip(&self.counts).fold(0usize, |acc, (&c, &n)| acc * n + c)
    }

    /// Bounds of block `gid`: dimension `i` is split into `counts[i]`
    /// near-equal pieces, remainder spread over the leading blocks.
    pub fn block_bounds(&self, gid: usize) -> BBox {
        let coords = self.block_coords(gid);
        let mut lo = Vec::with_capacity(coords.len());
        let mut hi = Vec::with_capacity(coords.len());
        for ((&c, &n), &dim) in coords.iter().zip(&self.counts).zip(&self.dims) {
            lo.push(dim_split(dim, n, c));
            hi.push(dim_split(dim, n, c + 1));
        }
        BBox::new(lo, hi)
    }

    /// Gids of all blocks whose bounds intersect `bb` — the lookup at the
    /// heart of index and query (Algorithms 1 and 3).
    pub fn blocks_intersecting(&self, bb: &BBox) -> Vec<usize> {
        assert_eq!(bb.rank(), self.dims.len(), "bbox rank mismatch");
        if bb.is_empty() {
            return Vec::new();
        }
        // Per-dimension index ranges of blocks touched by the box.
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(self.dims.len());
        for i in 0..self.dims.len() {
            let n = self.counts[i];
            let dim = self.dims[i];
            let lo = bb.lo[i].min(dim);
            let hi = bb.hi[i].min(dim);
            if lo >= hi {
                return Vec::new();
            }
            let first = block_index_of(dim, n, lo);
            let last = block_index_of(dim, n, hi - 1);
            ranges.push((first, last));
        }
        // Cartesian product of the ranges, in gid order. When blocks
        // outnumber cells, some blocks inside the index range are empty;
        // filter them by their actual bounds.
        let mut out = Vec::new();
        let mut coords: Vec<usize> = ranges.iter().map(|r| r.0).collect();
        loop {
            let gid = self.gid_of_coords(&coords);
            if self.block_bounds(gid).intersects(bb) {
                out.push(gid);
            }
            let mut i = coords.len();
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if coords[i] < ranges[i].1 {
                    coords[i] += 1;
                    for (j, r) in ranges.iter().enumerate().skip(i + 1) {
                        coords[j] = r.0;
                    }
                    break;
                }
            }
        }
    }
}

/// Boundary of piece `k` of `n` pieces of a `dim`-long axis.
fn dim_split(dim: u64, n: usize, k: usize) -> u64 {
    (dim * k as u64) / n as u64
}

/// Which of `n` pieces contains index `x` (0 ≤ x < dim).
fn block_index_of(dim: u64, n: usize, x: u64) -> usize {
    // Inverse of dim_split; linear scan avoided via direct formula then
    // boundary correction (integer division truncation).
    let mut k = ((x as u128 * n as u128) / dim as u128) as usize;
    while dim_split(dim, n, k + 1) <= x {
        k += 1;
    }
    while dim_split(dim, n, k) > x {
        k -= 1;
    }
    k.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_blocks_over_2d_grid() {
        // Paper Fig. 4: 6 producer blocks over a 2-d domain → 3×2 grid.
        let d = RegularDecomposer::new(&[60, 40], 6);
        assert_eq!(d.counts(), &[3, 2]);
        assert_eq!(d.nblocks(), 6);
        let b0 = d.block_bounds(0);
        assert_eq!(b0, BBox::new(vec![0, 0], vec![20, 20]));
        let b5 = d.block_bounds(5);
        assert_eq!(b5, BBox::new(vec![40, 20], vec![60, 40]));
    }

    #[test]
    fn blocks_tile_the_domain_exactly() {
        for nblocks in [1usize, 2, 3, 5, 6, 8, 12, 16] {
            let d = RegularDecomposer::new(&[17, 23], nblocks);
            let total: u64 = (0..d.nblocks()).map(|g| d.block_bounds(g).npoints()).sum();
            assert_eq!(total, 17 * 23, "nblocks={nblocks}");
            // No two blocks overlap.
            for a in 0..d.nblocks() {
                for b in a + 1..d.nblocks() {
                    assert!(
                        !d.block_bounds(a).intersects(&d.block_bounds(b)),
                        "blocks {a} and {b} overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn coords_roundtrip() {
        let d = RegularDecomposer::new(&[10, 10, 10], 12);
        for gid in 0..d.nblocks() {
            assert_eq!(d.gid_of_coords(&d.block_coords(gid)), gid);
        }
    }

    #[test]
    fn intersecting_blocks_found() {
        let d = RegularDecomposer::new(&[60, 40], 6); // 3x2 blocks of 20x20
                                                      // A box inside block 0 only.
        assert_eq!(d.blocks_intersecting(&BBox::new(vec![5, 5], vec![10, 10])), vec![0]);
        // A box crossing the vertical boundary of blocks 0 and 1.
        assert_eq!(d.blocks_intersecting(&BBox::new(vec![5, 15], vec![10, 25])), vec![0, 1]);
        // A box covering everything.
        assert_eq!(
            d.blocks_intersecting(&BBox::new(vec![0, 0], vec![60, 40])),
            vec![0, 1, 2, 3, 4, 5]
        );
        // Empty box.
        assert!(d.blocks_intersecting(&BBox::new(vec![5, 5], vec![5, 10])).is_empty());
    }

    #[test]
    fn intersecting_matches_bruteforce() {
        let d = RegularDecomposer::new(&[31, 17, 9], 24);
        let boxes = [
            BBox::new(vec![0, 0, 0], vec![31, 17, 9]),
            BBox::new(vec![3, 2, 1], vec![10, 9, 5]),
            BBox::new(vec![30, 16, 8], vec![31, 17, 9]),
            BBox::new(vec![0, 0, 0], vec![1, 1, 1]),
            BBox::new(vec![10, 5, 0], vec![25, 6, 9]),
        ];
        for bb in &boxes {
            let fast = d.blocks_intersecting(bb);
            let brute: Vec<usize> =
                (0..d.nblocks()).filter(|&g| d.block_bounds(g).intersects(bb)).collect();
            assert_eq!(fast, brute, "bb={bb:?}");
        }
    }

    #[test]
    fn clamps_boxes_beyond_domain() {
        let d = RegularDecomposer::new(&[10], 2);
        let all = d.blocks_intersecting(&BBox::new(vec![0], vec![100]));
        assert_eq!(all, vec![0, 1]);
    }

    #[test]
    fn block_index_of_is_inverse_of_split() {
        for (dim, n) in [(10u64, 3usize), (17, 5), (64, 8), (7, 7), (100, 1)] {
            for x in 0..dim {
                let k = block_index_of(dim, n, x);
                assert!(dim_split(dim, n, k) <= x && x < dim_split(dim, n, k + 1));
            }
        }
    }
}
