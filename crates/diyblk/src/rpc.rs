//! A minimal remote-procedure-call abstraction over the message substrate.
//!
//! The paper: "the index, serve, and query functions are written using a
//! custom remote procedure call (RPC) abstraction implemented over MPI."
//! Here a *server* rank sits in a [`RpcServer::serve`] loop handling
//! requests from any rank of a (typically world) communicator; a *client*
//! issues blocking calls and fire-and-forget notifications. Requests carry
//! a method id so one loop can multiplex many procedures, and the server's
//! handler decides when the loop terminates (e.g. when every consumer has
//! said "done").
//!
//! ## Wire format and call ids
//!
//! Every request frame is `[u32 method][u64 call_id][args]`; every reply
//! frame is `[u64 call_id][body]`. A call id of 0 marks a notification —
//! the server never replies to it. Nonzero ids come from a process-global
//! counter, so a reply can always be matched to the exact call that asked
//! for it. This matters once timeouts exist: if a call times out and the
//! client retries, the server may still answer the *first* request later;
//! the client recognises the stale id and discards that reply instead of
//! mistaking it for the answer to the retry.
//!
//! Replies travel as multi-part [`Payload`]s: the 8-byte call id is its
//! own small part, followed by the handler's body parts unchanged. A
//! zero-copy server ([`ServeOutcome::ReplyParts`]) can therefore *lend*
//! refcounted slices of buffers it already owns — dataset regions — and
//! the client receives those very allocations; nothing between the handler
//! and the consumer flattens or re-encodes the body. The flattened byte
//! stream is identical to the historical contiguous frame, so the wire
//! format is unchanged.
//!
//! ## Timeouts and retries
//!
//! [`RpcClient::call`] blocks forever, matching MPI's default behaviour.
//! [`RpcClient::call_timeout`] bounds the wait; [`RpcClient::call_retry`]
//! layers bounded resends with backoff on top, for *idempotent* methods
//! (queries, fetches). A dead server (detected by the fault layer) fails
//! fast with [`RpcError::PeerDead`] — retrying cannot help, the rank is
//! gone for the rest of the run.
//!
//! Deadlines are measured on `obsv::clock` — the observability layer's
//! virtual clock — not on raw `Instant::now()`. The clock normally tracks
//! real time, but tests (and the simulator) can jump it forward with
//! `obsv::clock::advance_ns`, and every pending RPC deadline moves with
//! it: waits are chopped into short liveness-poll quanta and the deadline
//! is re-checked against the virtual clock at each wake, so a clock
//! advance is noticed within one quantum instead of after a real-time
//! sleep of the full timeout.
//!
//! ## Pipelined multi-calls
//!
//! [`RpcClient::call_many`] issues a whole fan-out of requests at once —
//! one per [`Call`] — and completes them *as the replies arrive*, in
//! whatever order the servers answer. Each in-flight request keeps its own
//! call id, per-attempt deadline, and bounded-retry state, so a timeout or
//! a death on one server never stalls the others; while one server is
//! still computing its reply, the client is already consuming replies from
//! the rest. This is the primitive under LowFive's pipelined consumer
//! fetch path (see `lowfive::dist`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};
use simmpi::{Comm, Payload, RecvError, SrcSel, ANY_SOURCE};

/// Tags used by the RPC layer (ordinary user tags, below the collective
/// range; chosen high to stay clear of application traffic).
const TAG_REQUEST: u32 = 0x7F00_0001;
const TAG_REPLY: u32 = 0x7F00_0002;
/// Gossip lane: unacknowledged control datagrams (heartbeats, membership
/// rumors) on their own tag, so liveness traffic is never queued behind —
/// and never competes with — request/reply data frames on `TAG_REQUEST`.
/// See `gossip_send` / `gossip_poll`.
const TAG_GOSSIP: u32 = 0x7F00_0003;

/// Call id of a notification: no reply is ever sent for it.
const NOTIFY_ID: u64 = 0;

/// Upper bound on any single blocking receive in the timed client paths.
/// Short enough that both a peer death (wildcard receives cannot abort on
/// death) and a virtual-clock jump (`obsv::clock::advance_ns`) are noticed
/// promptly; long enough to stay off the scheduler's back.
const LIVENESS_POLL: Duration = Duration::from_millis(25);

/// Process-global call-id source. Ranks are threads in one process, so a
/// single counter keeps every in-flight call distinguishable.
static NEXT_CALL_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_call_id() -> u64 {
    NEXT_CALL_ID.fetch_add(1, Ordering::Relaxed)
}

fn encode_request(method: u32, call_id: u64, args: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(12 + args.len());
    b.put_u32_le(method);
    b.put_u64_le(call_id);
    b.put_slice(args);
    b.freeze()
}

fn decode_request(payload: &Bytes) -> (u32, u64, Bytes) {
    let method = u32::from_le_bytes(payload[..4].try_into().expect("4-byte method id"));
    let call_id = u64::from_le_bytes(payload[4..12].try_into().expect("8-byte call id"));
    (method, call_id, payload.slice(12..))
}

/// Prefix a reply body with its call id *without touching the body*: the
/// id becomes its own 8-byte part and the handler's parts follow as the
/// same refcounted allocations. Flattened, the frame is byte-identical to
/// the historical contiguous `[u64 call_id][body]` encoding.
fn encode_reply_parts(call_id: u64, body: Payload) -> Payload {
    let mut p = Payload::from(call_id.to_le_bytes().to_vec());
    p.extend(body);
    p
}

/// Split a reply frame into `(call_id, body)` in place: an 8-byte prefix
/// peek plus a part-slicing `advance` — no body byte is copied.
fn decode_reply_parts(mut payload: Payload) -> (u64, Payload) {
    let mut id = [0u8; 8];
    assert!(payload.copy_prefix(&mut id), "reply frame carries an 8-byte call id");
    payload.advance(8);
    (u64::from_le_bytes(id), payload)
}

/// Identity of one incoming request: who called, and which call it was.
/// Servers that defer a request keep the `Caller` and answer later via
/// [`send_reply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Caller {
    /// Caller's rank in the serving communicator.
    pub rank: usize,
    /// The request's call id (0 for notifications).
    pub call_id: u64,
}

/// Why a bounded call failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// No reply arrived within the allotted time (after any retries).
    TimedOut,
    /// The server rank is dead; no retry can succeed.
    PeerDead,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::TimedOut => write!(f, "rpc call timed out"),
            RpcError::PeerDead => write!(f, "rpc server rank is dead"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Bounded-retry parameters for [`RpcClient::call_retry`]. Only use with
/// idempotent methods: a retry re-executes the request on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be at least 1.
    pub attempts: u32,
    /// Per-attempt reply timeout.
    pub timeout: Duration,
    /// Sleep between attempts, doubled each retry (simple exponential
    /// backoff: `backoff`, `2*backoff`, `4*backoff`, …).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// `attempts` tries of `timeout` each, with no backoff sleep.
    pub fn new(attempts: u32, timeout: Duration) -> Self {
        RetryPolicy { attempts, timeout, backoff: Duration::ZERO }
    }

    /// Set the initial backoff sleep.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// What the server should do after handling one request.
pub enum ServeOutcome {
    /// Send this reply to the caller and keep serving.
    Reply(Bytes),
    /// Send this multi-part reply and keep serving. The parts are lent,
    /// not copied: a handler answering from shallow dataset regions pushes
    /// refcounted slices of the producer's buffers and they travel to the
    /// caller as-is.
    ReplyParts(Payload),
    /// No reply (the request was a notification, or is being deferred);
    /// keep serving.
    Continue,
    /// Send this reply (if `Some`) and exit the serve loop.
    Stop(Option<Bytes>),
}

/// A data-plane job offloaded to the worker pool by
/// [`RpcServer::serve_concurrent`]: executed on a worker thread, its
/// return value is sent to the caller as the reply body. The `'j`
/// lifetime lets jobs borrow server-local state (indexes, regions) —
/// workers are scoped threads joined before `serve_concurrent` returns.
pub type ServeJob<'j> = Box<dyn FnOnce() -> Payload + Send + 'j>;

/// What a [`RpcServer::serve_concurrent`] handler decides per request:
/// handle it on the dispatcher thread (control plane) or hand it to the
/// worker pool (data plane).
pub enum ServeStep<'j> {
    /// Execute on the dispatcher, exactly like [`RpcServer::serve`]:
    /// stateful decisions (done-counting, parking, shutdown ordering)
    /// stay single-threaded.
    Inline(ServeOutcome),
    /// Execute on a pool worker; the job's return value is the reply.
    /// Only safe for requests whose reply the caller matches by call id
    /// (all `diyblk` clients do) — worker replies may overtake
    /// dispatcher replies and each other.
    Offload(ServeJob<'j>),
}

/// Server side: a loop dispatching incoming requests to a handler.
pub struct RpcServer<'a> {
    comm: &'a Comm,
}

impl<'a> RpcServer<'a> {
    /// Serve requests arriving on `comm`.
    pub fn new(comm: &'a Comm) -> Self {
        RpcServer { comm }
    }

    fn reply_to(&self, caller: Caller, body: Payload) {
        // Notifications carry no reply channel; answering one would strand
        // a frame in the caller's mailbox forever.
        if caller.call_id != NOTIFY_ID {
            self.comm.send_parts(caller.rank, TAG_REPLY, encode_reply_parts(caller.call_id, body));
        }
    }

    /// Handle requests until the handler returns [`ServeOutcome::Stop`].
    /// The handler receives `(caller, method id, argument bytes)`.
    pub fn serve<F>(&self, mut handler: F)
    where
        F: FnMut(Caller, u32, Bytes) -> ServeOutcome,
    {
        loop {
            let env = self.comm.recv(ANY_SOURCE, TAG_REQUEST.into());
            let (method, call_id, args) = decode_request(&env.payload);
            let caller = Caller { rank: env.src, call_id };
            // The serve-side span carries the same call id as the client's
            // call span, so a trace viewer can correlate the two tracks.
            let sp = obsv::span_tagged(obsv::Phase::RpcServe, call_id);
            let outcome = handler(caller, method, args);
            drop(sp);
            match outcome {
                ServeOutcome::Reply(reply) => self.reply_to(caller, reply.into()),
                ServeOutcome::ReplyParts(reply) => self.reply_to(caller, reply),
                ServeOutcome::Continue => {}
                ServeOutcome::Stop(reply) => {
                    if let Some(r) = reply {
                        self.reply_to(caller, r.into());
                    }
                    return;
                }
            }
        }
    }

    /// Handle requests with a dispatcher/worker-pool split: the receive
    /// loop (and every [`ServeStep::Inline`] outcome) stays on this
    /// thread, while [`ServeStep::Offload`] jobs are executed — and their
    /// replies sent — by a bounded pool of `workers` scoped threads.
    ///
    /// `workers <= 1` degenerates to exactly [`RpcServer::serve`]: jobs
    /// run inline on the dispatcher in arrival order, so the serial path
    /// is bit-identical to the historical loop (same sends, same order).
    ///
    /// With `workers >= 2`, replies to offloaded requests are emitted in
    /// *completion* order, not arrival order — callers match replies by
    /// call id, so this is invisible to every `diyblk` client. Stateful
    /// control-plane decisions must stay [`ServeStep::Inline`]; the
    /// handler itself is only ever invoked from the dispatcher thread, so
    /// it may keep `&mut` state, while offloaded jobs see shared state
    /// only (`Send` closures borrowing `'j` data).
    ///
    /// On [`ServeOutcome::Stop`] the dispatcher closes the job queue,
    /// drains it (workers finish and reply to every queued job), joins
    /// the pool, and only then sends the final stop reply — so a stop ack
    /// is always the last frame the stopping caller receives.
    pub fn serve_concurrent<'j, F>(&self, workers: usize, mut handler: F)
    where
        F: FnMut(Caller, u32, Bytes) -> ServeStep<'j>,
    {
        if workers <= 1 {
            // Serial mode: the dispatcher executes offloaded jobs inline,
            // preserving the exact recv/reply interleaving of `serve`.
            self.serve(|caller, method, args| match handler(caller, method, args) {
                ServeStep::Inline(outcome) => outcome,
                ServeStep::Offload(job) => ServeOutcome::ReplyParts(job()),
            });
            return;
        }
        let comm = self.comm;
        // Queue depth is sampled at enqueue (jobs waiting + the one being
        // added); decremented when a worker picks a job up.
        let depth = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (tx, rx) = mpsc::sync_channel::<(Caller, ServeJob<'j>)>(2 * workers);
            // std's mpsc receiver is single-consumer; a mutex turns it
            // into a shared work queue (contention is one lock per job,
            // far off the gather/encode critical path).
            let rx = Arc::new(Mutex::new(rx));
            let parent = obsv::current();
            let depth_ref = &depth;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let rx = Arc::clone(&rx);
                    let parent = parent.clone();
                    s.spawn(move || {
                        // Workers record into a fork of the dispatcher's
                        // lane, like every helper thread in the workspace.
                        let _obs = parent.and_then(|r| r.fork()).map(obsv::install);
                        loop {
                            // Hold the lock only across the blocking
                            // dequeue, never across job execution.
                            let recv = rx.lock().expect("serve worker lock").recv();
                            let Ok((caller, job)) = recv else { return };
                            depth_ref.fetch_sub(1, Ordering::Relaxed);
                            let t0 = obsv::clock::now_ns();
                            let reply = job();
                            obsv::counter_add(obsv::Ctr::ServeWorkerJobs, 1);
                            obsv::counter_add(
                                obsv::Ctr::ServeWorkerBusyNs,
                                obsv::clock::now_ns().saturating_sub(t0),
                            );
                            send_reply_parts(comm, caller, reply);
                        }
                    })
                })
                .collect();
            loop {
                let env = comm.recv(ANY_SOURCE, TAG_REQUEST.into());
                let (method, call_id, args) = decode_request(&env.payload);
                let caller = Caller { rank: env.src, call_id };
                let sp = obsv::span_tagged(obsv::Phase::RpcServe, call_id);
                let step = handler(caller, method, args);
                drop(sp);
                match step {
                    ServeStep::Inline(ServeOutcome::Reply(reply)) => {
                        self.reply_to(caller, reply.into())
                    }
                    ServeStep::Inline(ServeOutcome::ReplyParts(reply)) => {
                        self.reply_to(caller, reply)
                    }
                    ServeStep::Inline(ServeOutcome::Continue) => {}
                    ServeStep::Inline(ServeOutcome::Stop(reply)) => {
                        // Close the queue, let the pool drain every
                        // already-accepted job, then ack the stop last.
                        drop(tx);
                        for h in handles {
                            h.join().expect("serve worker panicked");
                        }
                        if let Some(r) = reply {
                            self.reply_to(caller, r.into());
                        }
                        return;
                    }
                    ServeStep::Offload(job) => {
                        let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
                        obsv::hist_record(obsv::Hist::ServeQueueDepth, d as u64);
                        // Bounded queue: a flooded server back-pressures
                        // the dispatcher (stops receiving) instead of
                        // buffering without limit.
                        tx.send((caller, job)).expect("workers outlive the dispatcher");
                    }
                }
            }
        });
    }

    /// Handle at most one pending request without blocking; returns whether
    /// the handler asked to stop. Useful for servers that interleave
    /// serving with other work.
    pub fn poll<F>(&self, mut handler: F) -> Option<bool>
    where
        F: FnMut(Caller, u32, Bytes) -> ServeOutcome,
    {
        let env = self.comm.try_recv(ANY_SOURCE, TAG_REQUEST.into())?;
        let (method, call_id, args) = decode_request(&env.payload);
        let caller = Caller { rank: env.src, call_id };
        let sp = obsv::span_tagged(obsv::Phase::RpcServe, call_id);
        let outcome = handler(caller, method, args);
        drop(sp);
        Some(match outcome {
            ServeOutcome::Reply(reply) => {
                self.reply_to(caller, reply.into());
                false
            }
            ServeOutcome::ReplyParts(reply) => {
                self.reply_to(caller, reply);
                false
            }
            ServeOutcome::Continue => false,
            ServeOutcome::Stop(reply) => {
                if let Some(r) = reply {
                    self.reply_to(caller, r.into());
                }
                true
            }
        })
    }
}

/// Send a reply outside the normal handler return path. Servers that
/// defer a request (returning [`ServeOutcome::Continue`] and remembering
/// the [`Caller`]) use this to answer later — e.g. a staging server
/// holding a query until the data version is complete.
pub fn send_reply(comm: &Comm, caller: Caller, reply: Bytes) {
    send_reply_parts(comm, caller, reply.into());
}

/// As [`send_reply`], but the body is a multi-part [`Payload`] whose parts
/// travel to the caller without being gathered into one buffer.
pub fn send_reply_parts(comm: &Comm, caller: Caller, reply: Payload) {
    if caller.call_id != NOTIFY_ID {
        comm.send_parts(caller.rank, TAG_REPLY, encode_reply_parts(caller.call_id, reply));
    }
}

/// Send a control datagram on the **gossip lane**: `[method u32][args]`,
/// no call id, no reply, no retry. Gossip frames ride `TAG_GOSSIP` — a
/// flow of their own — so a fault plan's once-per-flow drop can eat one
/// heartbeat without touching the request/reply lane, and a serve loop
/// busy with data frames never delays liveness traffic behind them.
/// Exactly the semantics a heartbeat protocol wants: best-effort, lossy,
/// cheap.
pub fn gossip_send(comm: &Comm, dest: usize, method: u32, args: &[u8]) {
    obsv::counter_add(obsv::Ctr::HeartbeatsSent, 1);
    let mut b = BytesMut::with_capacity(4 + args.len());
    b.put_u32_le(method);
    b.put_slice(args);
    comm.send(dest, TAG_GOSSIP, b.freeze());
}

/// Drain one pending gossip datagram without blocking, returning
/// `(sender rank, method, args)`. Poll-loop servers call this each
/// iteration, ahead of the request lane, so membership observations stay
/// fresh even while the shard is saturated with data traffic.
pub fn gossip_poll(comm: &Comm) -> Option<(usize, u32, Bytes)> {
    let env = comm.try_recv(ANY_SOURCE, TAG_GOSSIP.into())?;
    let method = u32::from_le_bytes(env.payload[..4].try_into().expect("4-byte gossip method"));
    Some((env.src, method, env.payload.slice(4..)))
}

/// Client side: blocking calls and notifications to server ranks.
pub struct RpcClient<'a> {
    comm: &'a Comm,
}

impl<'a> RpcClient<'a> {
    /// Issue calls over `comm`.
    pub fn new(comm: &'a Comm) -> Self {
        RpcClient { comm }
    }

    /// Call `method` on `server` and block for the reply.
    pub fn call(&self, server: usize, method: u32, args: &[u8]) -> Bytes {
        self.call_payload(server, method, args).into_bytes()
    }

    /// As [`RpcClient::call`], but hand back the reply body with the
    /// server's part structure intact — the zero-copy fetch path scatters
    /// straight out of these parts instead of flattening them first.
    pub fn call_payload(&self, server: usize, method: u32, args: &[u8]) -> Payload {
        let call_id = fresh_call_id();
        obsv::counter_add(obsv::Ctr::RpcCalls, 1);
        let sp = obsv::span_tagged(obsv::Phase::RpcCall, call_id);
        self.comm.send(server, TAG_REQUEST, encode_request(method, call_id, args));
        loop {
            let env = self.comm.recv_parts(SrcSel::Rank(server), TAG_REPLY.into());
            let (id, body) = decode_reply_parts(env.payload);
            if id == call_id {
                obsv::hist_record(obsv::Hist::RpcReplySize, body.len() as u64);
                obsv::hist_record(obsv::Hist::RpcLatencyNs, sp.finish_ns());
                return body;
            }
            // Stale reply to an earlier timed-out call from this rank.
        }
    }

    /// As [`RpcClient::call`], but give up if the reply does not arrive
    /// within `timeout`. Fails fast with [`RpcError::PeerDead`] if the
    /// server rank is known dead. Stale replies (to earlier timed-out
    /// calls) are discarded without consuming the deadline's meaning: the
    /// clock keeps running until *this* call's reply shows up.
    ///
    /// The deadline lives on the `obsv::clock` virtual clock; a
    /// `clock::advance_ns` jump past it is honoured within one liveness
    /// poll.
    pub fn call_timeout(
        &self,
        server: usize,
        method: u32,
        args: &[u8],
        timeout: Duration,
    ) -> Result<Bytes, RpcError> {
        self.call_timeout_payload(server, method, args, timeout).map(Payload::into_bytes)
    }

    /// Parts-preserving variant of [`RpcClient::call_timeout`].
    pub fn call_timeout_payload(
        &self,
        server: usize,
        method: u32,
        args: &[u8],
        timeout: Duration,
    ) -> Result<Payload, RpcError> {
        let call_id = fresh_call_id();
        obsv::counter_add(obsv::Ctr::RpcCalls, 1);
        let sp = obsv::span_tagged(obsv::Phase::RpcCall, call_id);
        self.comm.send(server, TAG_REQUEST, encode_request(method, call_id, args));
        let deadline_ns = obsv::clock::deadline_after(timeout);
        loop {
            let now_ns = obsv::clock::now_ns();
            if now_ns >= deadline_ns {
                obsv::counter_add(obsv::Ctr::RpcTimeouts, 1);
                return Err(RpcError::TimedOut);
            }
            // Wait in short quanta: the real-time receive cannot observe a
            // virtual-clock jump, so never park longer than one poll.
            let wait = Duration::from_nanos(deadline_ns - now_ns).min(LIVENESS_POLL);
            match self.comm.recv_timeout_parts(SrcSel::Rank(server), TAG_REPLY.into(), wait) {
                Ok(env) => {
                    let (id, body) = decode_reply_parts(env.payload);
                    if id == call_id {
                        obsv::hist_record(obsv::Hist::RpcReplySize, body.len() as u64);
                        obsv::hist_record(obsv::Hist::RpcLatencyNs, sp.finish_ns());
                        return Ok(body);
                    }
                }
                // Re-check the virtual deadline at the top of the loop.
                Err(RecvError::TimedOut) => {}
                Err(RecvError::PeerDead) => {
                    obsv::counter_add(obsv::Ctr::RpcPeersDead, 1);
                    return Err(RpcError::PeerDead);
                }
            }
        }
    }

    /// Bounded-retry call for *idempotent* methods: up to
    /// `policy.attempts` sends, each waiting `policy.timeout`, sleeping an
    /// exponentially growing `policy.backoff` between attempts. A dead
    /// server short-circuits to [`RpcError::PeerDead`] — resending to a
    /// corpse cannot succeed.
    pub fn call_retry(
        &self,
        server: usize,
        method: u32,
        args: &[u8],
        policy: RetryPolicy,
    ) -> Result<Bytes, RpcError> {
        self.call_retry_payload(server, method, args, policy).map(Payload::into_bytes)
    }

    /// Parts-preserving variant of [`RpcClient::call_retry`].
    pub fn call_retry_payload(
        &self,
        server: usize,
        method: u32,
        args: &[u8],
        policy: RetryPolicy,
    ) -> Result<Payload, RpcError> {
        assert!(policy.attempts >= 1, "retry policy needs at least one attempt");
        let mut backoff = policy.backoff;
        for attempt in 0..policy.attempts {
            if attempt > 0 {
                obsv::counter_add(obsv::Ctr::RpcRetries, 1);
            }
            match self.call_timeout_payload(server, method, args, policy.timeout) {
                Ok(body) => return Ok(body),
                Err(RpcError::PeerDead) => return Err(RpcError::PeerDead),
                Err(RpcError::TimedOut) => {
                    if attempt + 1 == policy.attempts {
                        return Err(RpcError::TimedOut);
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
            }
        }
        unreachable!("loop returns on the final attempt")
    }

    /// Send a request without waiting for (or expecting) a reply.
    pub fn notify(&self, server: usize, method: u32, args: &[u8]) {
        obsv::counter_add(obsv::Ctr::RpcNotifies, 1);
        self.comm.send(server, TAG_REQUEST, encode_request(method, NOTIFY_ID, args));
    }

    /// Issue every request in `calls` at once and complete them as the
    /// replies arrive, invoking `on_reply(index, result)` once per call in
    /// **completion order** (the index is the call's position in `calls`).
    ///
    /// With `policy: None` each call waits indefinitely, like
    /// [`RpcClient::call`] — except that a server known dead fails that
    /// call fast with [`RpcError::PeerDead`] instead of hanging the whole
    /// fan-out. With a [`RetryPolicy`], every call independently gets
    /// `policy.attempts` tries of `policy.timeout` each with exponential
    /// backoff between them, exactly like [`RpcClient::call_retry`] — but
    /// a retry of one call proceeds concurrently with the still-pending
    /// others instead of serializing behind them. Only use a policy with
    /// *idempotent* methods: a retry re-executes the request.
    ///
    /// Stale replies (to earlier timed-out attempts, from this or any
    /// previous call on this rank) are recognized by call id and
    /// discarded. Requests to the *same* server stay FIFO on its serve
    /// loop, so batching per server and fanning out across servers is the
    /// intended usage.
    pub fn call_many<F>(&self, calls: &[Call], policy: Option<RetryPolicy>, mut on_reply: F)
    where
        F: FnMut(usize, Result<Payload, RpcError>),
    {
        if calls.is_empty() {
            return;
        }
        if let Some(p) = policy {
            assert!(p.attempts >= 1, "retry policy needs at least one attempt");
        }
        obsv::counter_add(obsv::Ctr::RpcMultiCalls, 1);
        obsv::hist_record(obsv::Hist::RpcInflight, calls.len() as u64);
        let _sp = obsv::span(obsv::Phase::RpcCall);

        /// Where one fan-out entry currently is. Times are `obsv::clock`
        /// virtual nanoseconds, so a clock advance moves every pending
        /// deadline and resend at once.
        enum SlotState {
            /// Request is on the wire; waiting for the reply to `call_id`.
            Waiting { call_id: u64, deadline_ns: Option<u64> },
            /// Timed out; resend once `resend_at_ns` passes (backoff sleep
            /// without blocking the other in-flight calls).
            Backoff { resend_at_ns: u64 },
            /// Completed (reply delivered or error reported).
            Done,
        }
        struct Slot {
            server: usize,
            method: u32,
            args: Bytes,
            /// Resends still allowed after the current attempt.
            attempts_left: u32,
            backoff: Duration,
            sent_ns: u64,
            state: SlotState,
        }

        let mut slots: Vec<Slot> = calls
            .iter()
            .map(|c| Slot {
                server: c.server,
                method: c.method,
                args: c.args.clone(),
                attempts_left: policy.map(|p| p.attempts - 1).unwrap_or(0),
                backoff: policy.map(|p| p.backoff).unwrap_or(Duration::ZERO),
                sent_ns: 0,
                state: SlotState::Done, // placeholder until the first send
            })
            .collect();
        let mut by_id: HashMap<u64, usize> = HashMap::with_capacity(slots.len());
        let mut remaining = slots.len();

        let send_attempt = |slot: &mut Slot, by_id: &mut HashMap<u64, usize>, idx: usize| {
            let call_id = fresh_call_id();
            obsv::counter_add(obsv::Ctr::RpcCalls, 1);
            slot.sent_ns = obsv::clock::now_ns();
            self.comm.send(
                slot.server,
                TAG_REQUEST,
                encode_request(slot.method, call_id, &slot.args),
            );
            slot.state = SlotState::Waiting {
                call_id,
                deadline_ns: policy.map(|p| obsv::clock::deadline_after(p.timeout)),
            };
            by_id.insert(call_id, idx);
        };

        for (i, slot) in slots.iter_mut().enumerate() {
            send_attempt(slot, &mut by_id, i);
        }

        while remaining > 0 {
            let now_ns = obsv::clock::now_ns();
            // Housekeeping pass: dead peers, expired deadlines, due
            // resends. Completion never touches other slots, so one pass
            // per wake suffices.
            for (i, slot) in slots.iter_mut().enumerate() {
                if matches!(slot.state, SlotState::Done) {
                    continue;
                }
                if !self.comm.peer_alive(slot.server) {
                    if let SlotState::Waiting { call_id, .. } = slot.state {
                        by_id.remove(&call_id);
                    }
                    slot.state = SlotState::Done;
                    remaining -= 1;
                    obsv::counter_add(obsv::Ctr::RpcPeersDead, 1);
                    on_reply(i, Err(RpcError::PeerDead));
                    continue;
                }
                match slot.state {
                    SlotState::Waiting { call_id, deadline_ns: Some(d) } if d <= now_ns => {
                        by_id.remove(&call_id);
                        obsv::counter_add(obsv::Ctr::RpcTimeouts, 1);
                        if slot.attempts_left == 0 {
                            slot.state = SlotState::Done;
                            remaining -= 1;
                            on_reply(i, Err(RpcError::TimedOut));
                        } else {
                            slot.attempts_left -= 1;
                            obsv::counter_add(obsv::Ctr::RpcRetries, 1);
                            if slot.backoff.is_zero() {
                                send_attempt(slot, &mut by_id, i);
                            } else {
                                let resend_at_ns =
                                    now_ns.saturating_add(slot.backoff.as_nanos() as u64);
                                slot.backoff *= 2;
                                slot.state = SlotState::Backoff { resend_at_ns };
                            }
                        }
                    }
                    SlotState::Backoff { resend_at_ns } if resend_at_ns <= now_ns => {
                        send_attempt(slot, &mut by_id, i);
                    }
                    _ => {}
                }
            }
            if remaining == 0 {
                break;
            }
            // Sleep until the nearest deadline/resend (capped by the
            // liveness poll — the real-time receive cannot observe a
            // virtual-clock jump), or until any reply lands.
            let mut wake_ns = now_ns.saturating_add(LIVENESS_POLL.as_nanos() as u64);
            for slot in &slots {
                match slot.state {
                    SlotState::Waiting { deadline_ns: Some(d), .. } => wake_ns = wake_ns.min(d),
                    SlotState::Backoff { resend_at_ns } => wake_ns = wake_ns.min(resend_at_ns),
                    _ => {}
                }
            }
            match self.comm.recv_timeout_parts(
                SrcSel::Any,
                TAG_REPLY.into(),
                Duration::from_nanos(wake_ns.saturating_sub(now_ns)),
            ) {
                Ok(env) => {
                    let (id, body) = decode_reply_parts(env.payload);
                    if let Some(i) = by_id.remove(&id) {
                        obsv::hist_record(obsv::Hist::RpcReplySize, body.len() as u64);
                        obsv::hist_record(
                            obsv::Hist::RpcLatencyNs,
                            obsv::clock::now_ns().saturating_sub(slots[i].sent_ns),
                        );
                        slots[i].state = SlotState::Done;
                        remaining -= 1;
                        on_reply(i, Ok(body));
                    }
                    // Unknown id: stale reply to an earlier timed-out
                    // attempt — discard.
                }
                // Deadlines are handled at the top of the loop; a
                // wildcard receive never reports PeerDead.
                Err(RecvError::TimedOut) | Err(RecvError::PeerDead) => {}
            }
        }
    }

    /// As [`RpcClient::call_many`], but collect the results into a vector
    /// parallel to `calls` (index `i` holds call `i`'s outcome). Replies
    /// are still consumed as they arrive; only the return is ordered.
    pub fn call_many_collect(
        &self,
        calls: &[Call],
        policy: Option<RetryPolicy>,
    ) -> Vec<Result<Bytes, RpcError>> {
        let mut out: Vec<Result<Bytes, RpcError>> = vec![Err(RpcError::TimedOut); calls.len()];
        self.call_many(calls, policy, |i, r| out[i] = r.map(Payload::into_bytes));
        out
    }
}

/// One outgoing request of a [`RpcClient::call_many`] fan-out.
#[derive(Debug, Clone)]
pub struct Call {
    /// Server rank in the client's communicator.
    pub server: usize,
    /// Method id dispatched by the server's handler.
    pub method: u32,
    /// Serialized argument bytes.
    pub args: Bytes,
}

impl Call {
    /// Build one fan-out entry.
    pub fn new(server: usize, method: u32, args: impl Into<Bytes>) -> Self {
        Call { server, method, args: args.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::{FaultPlan, World};
    use std::time::Instant;

    const M_ECHO: u32 = 1;
    const M_ADD: u32 = 2;
    const M_DONE: u32 = 3;

    #[test]
    fn echo_and_stateful_server() {
        World::run(3, |c| {
            if c.rank() == 0 {
                // Server: echoes, accumulates, stops after 2 DONEs.
                let mut sum = 0u64;
                let mut done = 0;
                RpcServer::new(&c).serve(|_caller, method, args| match method {
                    M_ECHO => ServeOutcome::Reply(args),
                    M_ADD => {
                        sum += u64::from_le_bytes(args[..8].try_into().unwrap());
                        ServeOutcome::Reply(Bytes::copy_from_slice(&sum.to_le_bytes()))
                    }
                    M_DONE => {
                        done += 1;
                        if done == 2 {
                            ServeOutcome::Stop(None)
                        } else {
                            ServeOutcome::Continue
                        }
                    }
                    m => panic!("unknown method {m}"),
                });
                sum
            } else {
                let rpc = RpcClient::new(&c);
                let echoed = rpc.call(0, M_ECHO, b"ping");
                assert_eq!(&echoed[..], b"ping");
                let v = (c.rank() as u64) * 10;
                let _ = rpc.call(0, M_ADD, &v.to_le_bytes());
                rpc.notify(0, M_DONE, &[]);
                0
            }
        })
        .into_iter()
        .take(1)
        .for_each(|sum| assert_eq!(sum, 30));
    }

    #[test]
    fn many_clients_one_server() {
        World::run(8, |c| {
            if c.rank() == 0 {
                let mut remaining = 7;
                RpcServer::new(&c).serve(|caller, method, _args| match method {
                    M_ECHO => ServeOutcome::Reply(Bytes::copy_from_slice(
                        &(caller.rank as u64).to_le_bytes(),
                    )),
                    M_DONE => {
                        remaining -= 1;
                        if remaining == 0 {
                            ServeOutcome::Stop(None)
                        } else {
                            ServeOutcome::Continue
                        }
                    }
                    _ => unreachable!(),
                });
            } else {
                let rpc = RpcClient::new(&c);
                for _ in 0..5 {
                    let r = rpc.call(0, M_ECHO, &[]);
                    assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), c.rank() as u64);
                }
                rpc.notify(0, M_DONE, &[]);
            }
        });
    }

    #[test]
    fn poll_serves_when_ready() {
        World::run(2, |c| {
            if c.rank() == 0 {
                let server = RpcServer::new(&c);
                // The client only sends after the barrier, so nothing can
                // be queued yet.
                assert!(server.poll(|_, _, _| unreachable!()).is_none());
                c.barrier();
                // Poll until the client's request lands.
                loop {
                    if let Some(stopped) = server.poll(|caller, m, args| {
                        assert_eq!(m, M_ECHO);
                        assert_ne!(caller.call_id, NOTIFY_ID);
                        ServeOutcome::Stop(Some(args))
                    }) {
                        assert!(stopped);
                        break;
                    }
                    std::thread::yield_now();
                }
            } else {
                let rpc = RpcClient::new(&c);
                c.barrier();
                // A bounded call against a poll-driven server: the reply
                // arrives once the server gets around to polling.
                let reply = rpc
                    .call_timeout(0, M_ECHO, b"x", Duration::from_secs(10))
                    .expect("server polls after the barrier");
                assert_eq!(&reply[..], b"x");
            }
        });
    }

    #[test]
    fn notifications_are_never_answered() {
        World::run(2, |c| {
            if c.rank() == 0 {
                // A buggy-looking handler that replies to everything: the
                // reply to the notification must be suppressed.
                RpcServer::new(&c).serve(|caller, method, args| {
                    if method == M_DONE {
                        ServeOutcome::Stop(Some(args))
                    } else {
                        assert_eq!(caller.call_id, NOTIFY_ID);
                        ServeOutcome::Reply(args)
                    }
                });
            } else {
                let rpc = RpcClient::new(&c);
                rpc.notify(0, M_ECHO, b"no reply expected");
                // If the server (wrongly) answered the notification, that
                // frame would be the first TAG_REPLY in our mailbox and
                // the call below would mismatch ids forever; instead the
                // stale-discard loop never sees it because it was never
                // sent.
                let r = rpc.call(0, M_DONE, b"done");
                assert_eq!(&r[..], b"done");
            }
        });
    }

    #[test]
    fn call_timeout_expires_without_server() {
        World::run(2, |c| {
            if c.rank() == 0 {
                // Deliberately deaf server: never receives.
                c.barrier();
            } else {
                let rpc = RpcClient::new(&c);
                let err = rpc
                    .call_timeout(0, M_ECHO, &[], Duration::from_millis(50))
                    .expect_err("nobody is serving");
                assert_eq!(err, RpcError::TimedOut);
                c.barrier();
            }
        });
    }

    #[test]
    fn stale_reply_is_discarded_by_retry() {
        World::run(2, |c| {
            if c.rank() == 0 {
                // Stall long enough before the first reply that the
                // client's first attempt times out, then serve promptly
                // until the client says done. The client's later attempts
                // must skip the stale reply (first call id) and accept a
                // fresh one.
                let server = RpcServer::new(&c);
                let mut first = true;
                server.serve(|_caller, method, args| {
                    if method == M_DONE {
                        return ServeOutcome::Stop(None);
                    }
                    if std::mem::take(&mut first) {
                        std::thread::sleep(Duration::from_millis(120));
                    }
                    ServeOutcome::Reply(args)
                });
            } else {
                let rpc = RpcClient::new(&c);
                let policy = RetryPolicy::new(8, Duration::from_millis(60));
                let reply = rpc
                    .call_retry(0, M_ECHO, b"payload", policy)
                    .expect("a later attempt must succeed");
                assert_eq!(&reply[..], b"payload");
                rpc.notify(0, M_DONE, &[]);
            }
        });
    }

    #[test]
    fn call_many_completes_out_of_order() {
        // Three servers answer with per-server delays (slowest first in
        // the call list); the fan-out must deliver every reply, tagged
        // with the right index, as the replies arrive — the fast server's
        // answer is consumed while the slow one is still sleeping. The
        // completion *order* proves the pipelining (a serial client would
        // complete in call order); no wall-clock assertion is needed, so
        // the test is immune to scheduler noise and virtual-clock jumps.
        World::run(4, |c| {
            if c.rank() < 3 {
                let delay = Duration::from_millis(40 * (2 - c.rank() as u64));
                RpcServer::new(&c).serve(move |_caller, method, args| {
                    if method == M_DONE {
                        return ServeOutcome::Stop(None);
                    }
                    std::thread::sleep(delay);
                    ServeOutcome::Reply(args)
                });
            } else {
                let rpc = RpcClient::new(&c);
                let calls: Vec<Call> =
                    (0..3).map(|s| Call::new(s, M_ECHO, Bytes::from(vec![s as u8]))).collect();
                let mut order = Vec::new();
                rpc.call_many(&calls, None, |i, r| {
                    assert_eq!(&r.expect("live servers reply").into_bytes()[..], &[i as u8]);
                    order.push(i);
                });
                // Rank 2 replies immediately, rank 0 sleeps 80 ms: the
                // instant reply must complete before the slowest server's,
                // out of call order.
                assert_eq!(order.first(), Some(&2), "fastest server completes first: {order:?}");
                assert_eq!(order.last(), Some(&0), "slowest server completes last: {order:?}");
                let mut sorted = order;
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2]);
                for s in 0..3 {
                    rpc.notify(s, M_DONE, &[]);
                }
            }
        });
    }

    #[test]
    fn call_timeout_honours_virtual_clock() {
        // A deaf server and a 4-second deadline — but the deadline lives
        // on the obsv virtual clock, and a helper jumps that clock 5
        // seconds forward after ~60 ms of real time. The call must time
        // out almost immediately in real time, proving deadlines are
        // measured on the virtual clock rather than Instant::now().
        World::run(2, |c| {
            if c.rank() == 0 {
                // Deliberately deaf server: never receives.
                c.barrier();
            } else {
                let rpc = RpcClient::new(&c);
                let t0 = Instant::now();
                let advancer = std::thread::spawn(|| {
                    std::thread::sleep(Duration::from_millis(60));
                    obsv::clock::advance_ns(5_000_000_000);
                });
                let err = rpc
                    .call_timeout(0, M_ECHO, &[], Duration::from_secs(4))
                    .expect_err("the virtual deadline has passed");
                assert_eq!(err, RpcError::TimedOut);
                assert!(
                    t0.elapsed() < Duration::from_secs(2),
                    "timed out on real time, not the virtual clock: {:?}",
                    t0.elapsed()
                );
                advancer.join().unwrap();
                c.barrier();
            }
        });
    }

    #[test]
    fn call_many_collect_preserves_input_order() {
        World::run(3, |c| {
            if c.rank() < 2 {
                let me = c.rank() as u64;
                RpcServer::new(&c).serve(move |_caller, method, _args| {
                    if method == M_DONE {
                        ServeOutcome::Stop(None)
                    } else {
                        ServeOutcome::Reply(Bytes::copy_from_slice(&me.to_le_bytes()))
                    }
                });
            } else {
                let rpc = RpcClient::new(&c);
                // Two calls to each server, interleaved.
                let calls: Vec<Call> =
                    (0..4).map(|i| Call::new(i % 2, M_ECHO, Bytes::new())).collect();
                let got = rpc.call_many_collect(&calls, None);
                assert_eq!(got.len(), 4);
                for (i, r) in got.iter().enumerate() {
                    let r = r.as_ref().expect("reply");
                    let server = u64::from_le_bytes(r[..8].try_into().unwrap());
                    assert_eq!(server, (i % 2) as u64, "reply {i} routed to wrong slot");
                }
                rpc.notify(0, M_DONE, &[]);
                rpc.notify(1, M_DONE, &[]);
            }
        });
    }

    #[test]
    fn call_many_retries_after_timeout() {
        World::run(3, |c| {
            if c.rank() < 2 {
                // Each server stalls its first reply past the per-attempt
                // timeout; the fan-out must retry both concurrently and
                // accept the fresh replies while discarding the stale ones.
                let server = RpcServer::new(&c);
                let mut first = true;
                server.serve(|_caller, method, args| {
                    if method == M_DONE {
                        return ServeOutcome::Stop(None);
                    }
                    if std::mem::take(&mut first) {
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    ServeOutcome::Reply(args)
                });
            } else {
                let rpc = RpcClient::new(&c);
                let calls = vec![
                    Call::new(0, M_ECHO, Bytes::from_static(b"a")),
                    Call::new(1, M_ECHO, Bytes::from_static(b"b")),
                ];
                let policy = RetryPolicy::new(8, Duration::from_millis(50));
                let got = rpc.call_many_collect(&calls, Some(policy));
                assert_eq!(&got[0].as_ref().expect("retried")[..], b"a");
                assert_eq!(&got[1].as_ref().expect("retried")[..], b"b");
                rpc.notify(0, M_DONE, &[]);
                rpc.notify(1, M_DONE, &[]);
            }
        });
    }

    #[test]
    fn call_many_times_out_per_call() {
        World::run(3, |c| {
            if c.rank() == 0 {
                // Healthy server.
                RpcServer::new(&c).serve(|_caller, method, args| {
                    if method == M_DONE {
                        ServeOutcome::Stop(None)
                    } else {
                        ServeOutcome::Reply(args)
                    }
                });
            } else if c.rank() == 1 {
                // Deaf server: swallows every request without replying,
                // until told to stop.
                RpcServer::new(&c).serve(|_caller, method, _args| {
                    if method == M_DONE {
                        ServeOutcome::Stop(None)
                    } else {
                        ServeOutcome::Continue
                    }
                });
            } else {
                let rpc = RpcClient::new(&c);
                let calls = vec![
                    Call::new(0, M_ECHO, Bytes::from_static(b"ok")),
                    Call::new(1, M_ECHO, Bytes::from_static(b"lost")),
                ];
                let policy = RetryPolicy::new(2, Duration::from_millis(60));
                let got = rpc.call_many_collect(&calls, Some(policy));
                assert_eq!(&got[0].as_ref().expect("server 0 lives")[..], b"ok");
                assert_eq!(got[1], Err(RpcError::TimedOut), "deaf server must time out");
                rpc.notify(0, M_DONE, &[]);
                rpc.notify(1, M_DONE, &[]);
            }
        });
    }

    #[test]
    fn call_many_survives_one_dead_server() {
        let out = World::builder(3).fault_plan(FaultPlan::new(11).kill_rank(1, 1)).run_chaos(|c| {
            if c.rank() == 0 {
                RpcServer::new(&c).serve(|_caller, method, args| {
                    if method == M_DONE {
                        ServeOutcome::Stop(None)
                    } else {
                        ServeOutcome::Reply(args)
                    }
                });
            } else if c.rank() == 1 {
                // Dies on its first send (the reply to the fan-out).
                RpcServer::new(&c).serve(|_caller, _m, args| ServeOutcome::Reply(args));
                unreachable!("killed while replying");
            } else {
                let rpc = RpcClient::new(&c);
                let calls = vec![
                    Call::new(0, M_ECHO, Bytes::from_static(b"live")),
                    Call::new(1, M_ECHO, Bytes::from_static(b"doomed")),
                ];
                // Generous timeout: dead-peer detection must fail the
                // second call fast, without wedging the first.
                let policy = RetryPolicy::new(50, Duration::from_secs(5));
                let t0 = Instant::now();
                let got = rpc.call_many_collect(&calls, Some(policy));
                assert_eq!(&got[0].as_ref().expect("live server replies")[..], b"live");
                assert_eq!(got[1], Err(RpcError::PeerDead));
                assert!(t0.elapsed() < Duration::from_secs(30));
                rpc.notify(0, M_DONE, &[]);
            }
        });
        assert_eq!(out.deaths.len(), 1);
        assert!(out.deaths[0].injected);
    }

    #[test]
    fn dead_server_fails_fast() {
        use std::time::Instant;
        let out = World::builder(2).fault_plan(FaultPlan::new(7).kill_rank(0, 1)).run_chaos(|c| {
            if c.rank() == 0 {
                // Dies on its first send (the reply).
                RpcServer::new(&c).serve(|_caller, _m, args| ServeOutcome::Reply(args));
                unreachable!("killed while replying");
            } else {
                let rpc = RpcClient::new(&c);
                let t0 = Instant::now();
                let err = rpc
                    .call_retry(0, M_ECHO, &[], RetryPolicy::new(100, Duration::from_secs(5)))
                    .expect_err("server died");
                assert_eq!(err, RpcError::PeerDead);
                // Fail-fast: nowhere near 100 x 5s.
                assert!(t0.elapsed() < Duration::from_secs(30));
            }
        });
        assert_eq!(out.deaths.len(), 1);
        assert!(out.deaths[0].injected);
    }

    #[test]
    fn serve_concurrent_echoes_for_many_clients() {
        // Correctness under fan-in: 7 clients hammer one pooled server;
        // every reply must be routed to the right call.
        World::run(8, |c| {
            if c.rank() == 0 {
                let mut remaining = 7;
                RpcServer::new(&c).serve_concurrent(3, |caller, method, args| match method {
                    M_ECHO => ServeStep::Offload(Box::new(move || {
                        let mut v = vec![caller.rank as u8];
                        v.extend_from_slice(&args);
                        Payload::from(v)
                    })),
                    M_DONE => {
                        remaining -= 1;
                        if remaining == 0 {
                            ServeStep::Inline(ServeOutcome::Stop(None))
                        } else {
                            ServeStep::Inline(ServeOutcome::Continue)
                        }
                    }
                    _ => unreachable!(),
                });
            } else {
                let rpc = RpcClient::new(&c);
                for i in 0..5u8 {
                    let r = rpc.call(0, M_ECHO, &[i]);
                    assert_eq!(&r[..], &[c.rank() as u8, i]);
                }
                rpc.notify(0, M_DONE, &[]);
            }
        });
    }

    #[test]
    fn serve_concurrent_replies_in_completion_order() {
        // Two requests from the same client, FIFO into the server: the
        // first sleeps 120 ms in a worker, the second replies instantly
        // from another worker. The fan-out must complete the second call
        // first — replies are matched by call id, never by arrival order.
        World::run(2, |c| {
            if c.rank() == 0 {
                let mut seen = 0;
                RpcServer::new(&c).serve_concurrent(2, |_caller, method, args| match method {
                    M_ECHO => {
                        let slow = seen == 0;
                        seen += 1;
                        ServeStep::Offload(Box::new(move || {
                            if slow {
                                std::thread::sleep(Duration::from_millis(120));
                            }
                            args.into()
                        }))
                    }
                    M_DONE => ServeStep::Inline(ServeOutcome::Stop(None)),
                    _ => unreachable!(),
                });
            } else {
                let rpc = RpcClient::new(&c);
                let calls = vec![
                    Call::new(0, M_ECHO, Bytes::from_static(b"slow")),
                    Call::new(0, M_ECHO, Bytes::from_static(b"fast")),
                ];
                let mut order = Vec::new();
                rpc.call_many(&calls, None, |i, r| {
                    r.expect("live server replies");
                    order.push(i);
                });
                assert_eq!(order, vec![1, 0], "worker replies overtake the slow job");
                rpc.notify(0, M_DONE, &[]);
            }
        });
    }

    #[test]
    fn serve_concurrent_stop_drains_queued_jobs() {
        // Five slow notification jobs pile up in the pool ahead of the
        // stop request (same-client FIFO guarantees the server *received*
        // them first). Stop must drain every queued job before acking.
        World::run(2, |c| {
            if c.rank() == 0 {
                let executed = AtomicUsize::new(0);
                RpcServer::new(&c).serve_concurrent(2, |_caller, method, _args| match method {
                    M_ECHO => ServeStep::Offload(Box::new(|| {
                        std::thread::sleep(Duration::from_millis(15));
                        executed.fetch_add(1, Ordering::SeqCst);
                        Payload::new()
                    })),
                    M_DONE => {
                        ServeStep::Inline(ServeOutcome::Stop(Some(Bytes::from_static(b"ack"))))
                    }
                    _ => unreachable!(),
                });
                assert_eq!(executed.load(Ordering::SeqCst), 5, "stop must drain the queue");
            } else {
                let rpc = RpcClient::new(&c);
                for _ in 0..5 {
                    rpc.notify(0, M_ECHO, &[]);
                }
                let ack = rpc.call(0, M_DONE, &[]);
                assert_eq!(&ack[..], b"ack");
            }
        });
    }

    #[test]
    fn serve_concurrent_serial_mode_runs_jobs_inline() {
        // workers <= 1 must behave exactly like `serve`: offloaded jobs
        // execute on the dispatcher in arrival order.
        World::run(3, |c| {
            if c.rank() == 0 {
                let mut remaining = 2;
                RpcServer::new(&c).serve_concurrent(1, |_caller, method, args| match method {
                    M_ECHO => ServeStep::Offload(Box::new(move || args.into())),
                    M_DONE => {
                        remaining -= 1;
                        if remaining == 0 {
                            ServeStep::Inline(ServeOutcome::Stop(None))
                        } else {
                            ServeStep::Inline(ServeOutcome::Continue)
                        }
                    }
                    _ => unreachable!(),
                });
            } else {
                let rpc = RpcClient::new(&c);
                let r = rpc.call(0, M_ECHO, b"serial");
                assert_eq!(&r[..], b"serial");
                rpc.notify(0, M_DONE, &[]);
            }
        });
    }
}
