//! A minimal remote-procedure-call abstraction over the message substrate.
//!
//! The paper: "the index, serve, and query functions are written using a
//! custom remote procedure call (RPC) abstraction implemented over MPI."
//! Here a *server* rank sits in a [`RpcServer::serve`] loop handling
//! requests from any rank of a (typically world) communicator; a *client*
//! issues blocking calls and fire-and-forget notifications. Requests carry
//! a method id so one loop can multiplex many procedures, and the server's
//! handler decides when the loop terminates (e.g. when every consumer has
//! said "done").

use bytes::{BufMut, Bytes, BytesMut};
use simmpi::{Comm, SrcSel, ANY_SOURCE};

/// Tags used by the RPC layer (ordinary user tags, below the collective
/// range; chosen high to stay clear of application traffic).
const TAG_REQUEST: u32 = 0x7F00_0001;
const TAG_REPLY: u32 = 0x7F00_0002;

fn encode_request(method: u32, args: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(4 + args.len());
    b.put_u32_le(method);
    b.put_slice(args);
    b.freeze()
}

fn decode_request(payload: &Bytes) -> (u32, Bytes) {
    let method = u32::from_le_bytes(payload[..4].try_into().expect("4-byte method id"));
    (method, payload.slice(4..))
}

/// What the server should do after handling one request.
pub enum ServeOutcome {
    /// Send this reply to the caller and keep serving.
    Reply(Bytes),
    /// No reply (the request was a notification); keep serving.
    Continue,
    /// Send this reply (if `Some`) and exit the serve loop.
    Stop(Option<Bytes>),
}

/// Server side: a loop dispatching incoming requests to a handler.
pub struct RpcServer<'a> {
    comm: &'a Comm,
}

impl<'a> RpcServer<'a> {
    pub fn new(comm: &'a Comm) -> Self {
        RpcServer { comm }
    }

    /// Handle requests until the handler returns [`ServeOutcome::Stop`].
    /// The handler receives `(caller rank, method id, argument bytes)`.
    pub fn serve<F>(&self, mut handler: F)
    where
        F: FnMut(usize, u32, Bytes) -> ServeOutcome,
    {
        loop {
            let env = self.comm.recv(ANY_SOURCE, TAG_REQUEST.into());
            let (method, args) = decode_request(&env.payload);
            match handler(env.src, method, args) {
                ServeOutcome::Reply(reply) => self.comm.send(env.src, TAG_REPLY, reply),
                ServeOutcome::Continue => {}
                ServeOutcome::Stop(reply) => {
                    if let Some(r) = reply {
                        self.comm.send(env.src, TAG_REPLY, r);
                    }
                    return;
                }
            }
        }
    }

    /// Handle at most one pending request without blocking; returns whether
    /// the handler asked to stop. Useful for servers that interleave
    /// serving with other work.
    pub fn poll<F>(&self, mut handler: F) -> Option<bool>
    where
        F: FnMut(usize, u32, Bytes) -> ServeOutcome,
    {
        let env = self.comm.try_recv(ANY_SOURCE, TAG_REQUEST.into())?;
        let (method, args) = decode_request(&env.payload);
        Some(match handler(env.src, method, args) {
            ServeOutcome::Reply(reply) => {
                self.comm.send(env.src, TAG_REPLY, reply);
                false
            }
            ServeOutcome::Continue => false,
            ServeOutcome::Stop(reply) => {
                if let Some(r) = reply {
                    self.comm.send(env.src, TAG_REPLY, r);
                }
                true
            }
        })
    }
}

/// Send a reply outside the normal handler return path. Servers that
/// defer a request (returning [`ServeOutcome::Continue`] and remembering
/// the caller) use this to answer later — e.g. a staging server holding a
/// query until the data version is complete.
pub fn send_reply(comm: &Comm, dest: usize, reply: Bytes) {
    comm.send(dest, TAG_REPLY, reply);
}

/// Client side: blocking calls and notifications to server ranks.
pub struct RpcClient<'a> {
    comm: &'a Comm,
}

impl<'a> RpcClient<'a> {
    pub fn new(comm: &'a Comm) -> Self {
        RpcClient { comm }
    }

    /// Call `method` on `server` and block for the reply.
    pub fn call(&self, server: usize, method: u32, args: &[u8]) -> Bytes {
        self.comm.send(server, TAG_REQUEST, encode_request(method, args));
        self.comm.recv(SrcSel::Rank(server), TAG_REPLY.into()).payload
    }

    /// Send a request without waiting for (or expecting) a reply.
    pub fn notify(&self, server: usize, method: u32, args: &[u8]) {
        self.comm.send(server, TAG_REQUEST, encode_request(method, args));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::World;

    const M_ECHO: u32 = 1;
    const M_ADD: u32 = 2;
    const M_DONE: u32 = 3;

    #[test]
    fn echo_and_stateful_server() {
        World::run(3, |c| {
            if c.rank() == 0 {
                // Server: echoes, accumulates, stops after 2 DONEs.
                let mut sum = 0u64;
                let mut done = 0;
                RpcServer::new(&c).serve(|_src, method, args| match method {
                    M_ECHO => ServeOutcome::Reply(args),
                    M_ADD => {
                        sum += u64::from_le_bytes(args[..8].try_into().unwrap());
                        ServeOutcome::Reply(Bytes::copy_from_slice(&sum.to_le_bytes()))
                    }
                    M_DONE => {
                        done += 1;
                        if done == 2 {
                            ServeOutcome::Stop(None)
                        } else {
                            ServeOutcome::Continue
                        }
                    }
                    m => panic!("unknown method {m}"),
                });
                sum
            } else {
                let rpc = RpcClient::new(&c);
                let echoed = rpc.call(0, M_ECHO, b"ping");
                assert_eq!(&echoed[..], b"ping");
                let v = (c.rank() as u64) * 10;
                let _ = rpc.call(0, M_ADD, &v.to_le_bytes());
                rpc.notify(0, M_DONE, &[]);
                0
            }
        })
        .into_iter()
        .take(1)
        .for_each(|sum| assert_eq!(sum, 30));
    }

    #[test]
    fn many_clients_one_server() {
        World::run(8, |c| {
            if c.rank() == 0 {
                let mut remaining = 7;
                RpcServer::new(&c).serve(|src, method, _args| match method {
                    M_ECHO => ServeOutcome::Reply(Bytes::copy_from_slice(
                        &(src as u64).to_le_bytes(),
                    )),
                    M_DONE => {
                        remaining -= 1;
                        if remaining == 0 {
                            ServeOutcome::Stop(None)
                        } else {
                            ServeOutcome::Continue
                        }
                    }
                    _ => unreachable!(),
                });
            } else {
                let rpc = RpcClient::new(&c);
                for _ in 0..5 {
                    let r = rpc.call(0, M_ECHO, &[]);
                    assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), c.rank() as u64);
                }
                rpc.notify(0, M_DONE, &[]);
            }
        });
    }

    #[test]
    fn poll_serves_when_ready() {
        World::run(2, |c| {
            if c.rank() == 0 {
                let server = RpcServer::new(&c);
                assert!(server.poll(|_, _, _| unreachable!()).is_none());
                c.barrier();
                // After the barrier the request is definitely queued.
                loop {
                    if let Some(stopped) = server.poll(|_, m, args| {
                        assert_eq!(m, M_ECHO);
                        ServeOutcome::Stop(Some(args))
                    }) {
                        assert!(stopped);
                        break;
                    }
                }
            } else {
                let rpc = RpcClient::new(&c);
                rpc.notify(0, M_ECHO, b"x");
                c.barrier();
                let reply = c.recv(SrcSel::Rank(0), TAG_REPLY.into());
                assert_eq!(&reply.payload[..], b"x");
            }
        });
    }
}
