//! # diyblk — block-parallel decomposition and RPC, after DIY
//!
//! LowFive "depends on the DIY block parallel model to perform efficient
//! data redistribution" (paper Fig. 2). This crate is the from-scratch
//! stand-in for the pieces of DIY the paper exercises:
//!
//! * [`factor_count`] — factor *n* into *d* factors "as close to each
//!   other as possible" (paper §III-B), defining the shape of the common
//!   decomposition,
//! * [`RegularDecomposer`] — cut a d-dimensional domain into a grid of
//!   blocks, map block global ids (gids) to bounds, and answer the central
//!   geometric query of index–serve–query: *which blocks does this
//!   bounding box intersect?*,
//! * [`assigner`] — map block gids to ranks (one block per producer
//!   process in the paper's usage; contiguous and round-robin assignment
//!   for generality),
//! * [`rpc`] — the "custom remote procedure call abstraction implemented
//!   over MPI" that index, serve, and query are written with.

// The zero-copy transport path hands refcounted buffers around by
// value; a stray `.clone()` there silently reintroduces the copy this
// crate exists to avoid, so redundant clones are a hard error.
#![deny(clippy::redundant_clone)]

pub mod assigner;
pub mod decompose;
pub mod factor;
pub mod rpc;

pub use assigner::{Assigner, ContiguousAssigner, RoundRobinAssigner};
pub use decompose::RegularDecomposer;
pub use factor::factor_count;
pub use rpc::{
    Caller, RetryPolicy, RpcClient, RpcError, RpcServer, ServeJob, ServeOutcome, ServeStep,
};
