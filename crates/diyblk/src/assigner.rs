//! Block-to-rank assignment.

/// Maps block gids onto ranks and back.
pub trait Assigner: Send + Sync {
    /// Which rank owns block `gid`.
    fn rank_of(&self, gid: usize) -> usize;
    /// Blocks owned by `rank`, in gid order.
    fn gids_of(&self, rank: usize) -> Vec<usize>;
    /// Total block count.
    fn nblocks(&self) -> usize;
    /// Total rank count.
    fn nranks(&self) -> usize;
}

/// Blocks `[k·b, (k+1)·b)` go to rank `k` (with the remainder spread over
/// the leading ranks). With one block per rank — the paper's usage — gid
/// equals rank.
#[derive(Debug, Clone)]
pub struct ContiguousAssigner {
    nblocks: usize,
    nranks: usize,
}

impl ContiguousAssigner {
    pub fn new(nranks: usize, nblocks: usize) -> Self {
        assert!(nranks > 0 && nblocks > 0);
        ContiguousAssigner { nblocks, nranks }
    }

    fn start_of(&self, rank: usize) -> usize {
        (self.nblocks * rank) / self.nranks
    }
}

impl Assigner for ContiguousAssigner {
    fn rank_of(&self, gid: usize) -> usize {
        assert!(gid < self.nblocks);
        let mut r = (gid * self.nranks) / self.nblocks;
        while self.start_of(r + 1) <= gid {
            r += 1;
        }
        while self.start_of(r) > gid {
            r -= 1;
        }
        r
    }

    fn gids_of(&self, rank: usize) -> Vec<usize> {
        (self.start_of(rank)..self.start_of(rank + 1)).collect()
    }

    fn nblocks(&self) -> usize {
        self.nblocks
    }

    fn nranks(&self) -> usize {
        self.nranks
    }
}

/// Block `gid` goes to rank `gid % nranks`.
#[derive(Debug, Clone)]
pub struct RoundRobinAssigner {
    nblocks: usize,
    nranks: usize,
}

impl RoundRobinAssigner {
    pub fn new(nranks: usize, nblocks: usize) -> Self {
        assert!(nranks > 0 && nblocks > 0);
        RoundRobinAssigner { nblocks, nranks }
    }
}

impl Assigner for RoundRobinAssigner {
    fn rank_of(&self, gid: usize) -> usize {
        assert!(gid < self.nblocks);
        gid % self.nranks
    }

    fn gids_of(&self, rank: usize) -> Vec<usize> {
        (rank..self.nblocks).step_by(self.nranks).collect()
    }

    fn nblocks(&self) -> usize {
        self.nblocks
    }

    fn nranks(&self) -> usize {
        self.nranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_consistency(a: &dyn Assigner) {
        // Every gid is owned by exactly the rank whose gid list contains it.
        for gid in 0..a.nblocks() {
            let r = a.rank_of(gid);
            assert!(r < a.nranks());
            assert!(a.gids_of(r).contains(&gid));
        }
        // Lists partition the gids.
        let total: usize = (0..a.nranks()).map(|r| a.gids_of(r).len()).sum();
        assert_eq!(total, a.nblocks());
    }

    #[test]
    fn contiguous_one_block_per_rank() {
        let a = ContiguousAssigner::new(6, 6);
        for g in 0..6 {
            assert_eq!(a.rank_of(g), g);
            assert_eq!(a.gids_of(g), vec![g]);
        }
    }

    #[test]
    fn contiguous_uneven() {
        let a = ContiguousAssigner::new(3, 8);
        check_consistency(&a);
        // Block counts differ by at most one.
        let counts: Vec<usize> = (0..3).map(|r| a.gids_of(r).len()).collect();
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
        // Contiguity.
        for r in 0..3 {
            let g = a.gids_of(r);
            assert!(g.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    #[test]
    fn round_robin() {
        let a = RoundRobinAssigner::new(3, 8);
        check_consistency(&a);
        assert_eq!(a.gids_of(0), vec![0, 3, 6]);
        assert_eq!(a.gids_of(2), vec![2, 5]);
    }

    #[test]
    fn more_ranks_than_blocks() {
        let a = ContiguousAssigner::new(8, 3);
        check_consistency(&a);
        // Some ranks own nothing.
        assert!((0..8).any(|r| a.gids_of(r).is_empty()));
    }
}
