//! Factoring a block count into per-dimension factors.

/// Factor `n` into `d` factors that are as close to each other as possible
/// (paper §III-B: "the decomposition is found by factoring n into d
/// factors n1, …, nd that are as close to each other as possible").
///
/// Prime factors of `n` are distributed greedily, largest first, each onto
/// the currently smallest accumulated factor. The result is sorted in
/// non-increasing order (slowest-varying dimension gets the largest
/// factor) and always multiplies back to exactly `n`.
///
/// # Panics
/// Panics if `n == 0` or `d == 0`.
pub fn factor_count(n: usize, d: usize) -> Vec<usize> {
    assert!(n > 0, "cannot decompose zero blocks");
    assert!(d > 0, "need at least one dimension");
    let mut primes = prime_factors(n);
    primes.sort_unstable_by(|a, b| b.cmp(a));
    let mut factors = vec![1usize; d];
    for p in primes {
        let i = factors.iter().enumerate().min_by_key(|&(_, &f)| f).map(|(i, _)| i).expect("d ≥ 1");
        factors[i] *= p;
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    factors
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 2usize;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_are_exact() {
        for n in 1..=64 {
            for d in 1..=4 {
                let f = factor_count(n, d);
                assert_eq!(f.len(), d);
                assert_eq!(f.iter().product::<usize>(), n, "n={n} d={d} f={f:?}");
            }
        }
    }

    #[test]
    fn factors_are_balanced() {
        assert_eq!(factor_count(6, 2), vec![3, 2]);
        assert_eq!(factor_count(12, 2), vec![4, 3]);
        assert_eq!(factor_count(8, 3), vec![2, 2, 2]);
        assert_eq!(factor_count(64, 3), vec![4, 4, 4]);
        assert_eq!(factor_count(4096, 3), vec![16, 16, 16]);
    }

    #[test]
    fn primes_go_to_one_dimension() {
        assert_eq!(factor_count(7, 2), vec![7, 1]);
        assert_eq!(factor_count(1, 3), vec![1, 1, 1]);
    }

    #[test]
    fn sorted_non_increasing() {
        for n in [6usize, 30, 48, 100, 768] {
            let f = factor_count(n, 3);
            assert!(f.windows(2).all(|w| w[0] >= w[1]), "{f:?}");
        }
    }

    #[test]
    fn prime_factorization() {
        assert_eq!(prime_factors(360), vec![2, 2, 2, 3, 3, 5]);
        assert_eq!(prime_factors(97), vec![97]);
        assert!(prime_factors(1).is_empty());
    }
}
