//! Property-based tests of the decomposition layer: the common
//! decomposition must tile exactly, factor balancedly, and answer
//! intersection queries identically to brute force, for arbitrary domain
//! shapes and block counts.

use diyblk::{factor_count, Assigner, ContiguousAssigner, RegularDecomposer, RoundRobinAssigner};
use minih5::BBox;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    /// factor_count always multiplies back to n, sorted non-increasing.
    #[test]
    fn factorization_exact_and_sorted(n in 1usize..5000, d in 1usize..5) {
        let f = factor_count(n, d);
        prop_assert_eq!(f.len(), d);
        prop_assert_eq!(f.iter().product::<usize>(), n);
        prop_assert!(f.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Factors are balanced: no factor can be made closer to the geometric
    /// mean by moving a prime 2 from the largest to the smallest factor
    /// (weak local-optimality check: largest/smallest ≤ n for d=1, and for
    /// composite splits the max factor never exceeds smallest*max_prime).
    #[test]
    fn factorization_reasonably_balanced(n in 2usize..5000) {
        let f = factor_count(n, 3);
        let (mx, mn) = (f[0], f[2].max(1));
        // The greedy assignment bounds imbalance by the largest prime
        // factor of n.
        let largest_prime = largest_prime_factor(n);
        prop_assert!(mx <= mn.max(1) * largest_prime.max(2) * 2,
            "factors {f:?} too imbalanced for n={n}");
    }

    /// Blocks tile the domain exactly: disjoint, complete, in-bounds.
    #[test]
    fn blocks_tile_domain(
        dims in proptest::collection::vec(1u64..=40, 1..=3),
        nblocks in 1usize..=24,
    ) {
        let d = RegularDecomposer::new(&dims, nblocks);
        let domain: u64 = dims.iter().product();
        let mut total = 0u64;
        for g in 0..d.nblocks() {
            let b = d.block_bounds(g);
            total += b.npoints();
            for (i, (&lo, &hi)) in b.lo.iter().zip(&b.hi).enumerate() {
                prop_assert!(lo <= hi && hi <= dims[i]);
            }
        }
        prop_assert_eq!(total, domain);
        // Pairwise disjoint.
        for a in 0..d.nblocks() {
            for b in a + 1..d.nblocks() {
                prop_assert!(!d.block_bounds(a).intersects(&d.block_bounds(b)));
            }
        }
    }

    /// blocks_intersecting == brute force for random query boxes.
    #[test]
    fn intersection_query_matches_bruteforce(
        dims in proptest::collection::vec(1u64..=30, 1..=3),
        nblocks in 1usize..=24,
        seed in 0u64..10_000,
    ) {
        let d = RegularDecomposer::new(&dims, nblocks);
        // Derive a query box from the seed.
        let lo: Vec<u64> = dims.iter().enumerate()
            .map(|(i, &dim)| (seed >> (i * 4)) % (dim + 1))
            .collect();
        let hi: Vec<u64> = dims.iter().zip(&lo).enumerate()
            .map(|(i, (&dim, &l))| l + ((seed >> (i * 4 + 12)) % (dim + 1 - l)))
            .collect();
        let q = BBox::new(lo, hi);
        let fast = d.blocks_intersecting(&q);
        let brute: Vec<usize> = (0..d.nblocks())
            .filter(|&g| d.block_bounds(g).intersects(&q))
            .collect();
        prop_assert_eq!(fast, brute);
    }

    /// Both assigners partition gids among ranks consistently.
    #[test]
    fn assigners_partition(nranks in 1usize..=16, nblocks in 1usize..=48) {
        for a in [
            &ContiguousAssigner::new(nranks, nblocks) as &dyn Assigner,
            &RoundRobinAssigner::new(nranks, nblocks) as &dyn Assigner,
        ] {
            let mut owned = vec![false; nblocks];
            for r in 0..nranks {
                for g in a.gids_of(r) {
                    prop_assert!(!owned[g], "gid {g} owned twice");
                    owned[g] = true;
                    prop_assert_eq!(a.rank_of(g), r);
                }
            }
            prop_assert!(owned.iter().all(|&o| o));
        }
    }
}

fn largest_prime_factor(mut n: usize) -> usize {
    let mut best = 1;
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            best = p;
            n /= p;
        }
        p += 1;
    }
    best.max(n)
}
