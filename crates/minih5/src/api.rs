//! The user-facing API: `H5`, files, groups, datasets.
//!
//! Applications write against these handles exactly once and never change:
//! swapping the VOL connector (native file I/O ↔ LowFive in-memory
//! transport) happens either explicitly ([`H5::with_vol`]) or ambiently via
//! the thread registry ([`H5::open_default`]), matching the paper's
//! zero-code-change deployment.

use std::sync::Arc;

use bytes::Bytes;

use crate::datatype::{elems_as_bytes, elems_from_bytes, Datatype, H5Type};
use crate::error::{H5Error, H5Result};
use crate::native::NativeVol;
use crate::selection::Selection;
use crate::space::Dataspace;
use crate::tree::{ObjKind, Ownership};
use crate::vol::{thread_vol, ObjId, Vol};

/// Library entry point bound to one VOL connector.
#[derive(Clone)]
pub struct H5 {
    vol: Arc<dyn Vol>,
}

impl H5 {
    /// Use the built-in native (file) connector.
    pub fn native() -> H5 {
        H5 { vol: Arc::new(NativeVol::serial()) }
    }

    /// Use an explicit connector.
    pub fn with_vol(vol: Arc<dyn Vol>) -> H5 {
        H5 { vol }
    }

    /// Use the thread-registered connector if one is installed (see
    /// [`crate::vol::set_thread_vol`]), otherwise the native connector.
    /// This is what unmodified task code should call.
    pub fn open_default() -> H5 {
        match thread_vol() {
            Some(vol) => H5 { vol },
            None => H5::native(),
        }
    }

    /// Name of the active connector.
    pub fn vol_name(&self) -> &'static str {
        self.vol.vol_name()
    }

    /// The underlying connector handle.
    pub fn vol(&self) -> &Arc<dyn Vol> {
        &self.vol
    }

    /// Create (truncate) a file.
    pub fn create_file(&self, name: &str) -> H5Result<H5File> {
        let id = self.vol.file_create(name)?;
        Ok(H5File { vol: Arc::clone(&self.vol), id })
    }

    /// Open an existing file read-only.
    pub fn open_file(&self, name: &str) -> H5Result<H5File> {
        let id = self.vol.file_open(name)?;
        Ok(H5File { vol: Arc::clone(&self.vol), id })
    }
}

macro_rules! container_ops {
    ($ty:ty) => {
        impl $ty {
            /// Create a child group.
            pub fn create_group(&self, name: &str) -> H5Result<Group> {
                let id = self.vol.group_create(self.id, name)?;
                Ok(Group { vol: Arc::clone(&self.vol), id })
            }

            /// Open a child group by path.
            pub fn open_group(&self, path: &str) -> H5Result<Group> {
                let id = self.vol.open_path(self.id, path)?;
                match self.vol.obj_kind(id)? {
                    ObjKind::Group | ObjKind::File => Ok(Group { vol: Arc::clone(&self.vol), id }),
                    k => Err(H5Error::WrongKind { expected: "group", found: k.name() }),
                }
            }

            /// Create a child dataset.
            pub fn create_dataset(
                &self,
                name: &str,
                dtype: Datatype,
                space: Dataspace,
            ) -> H5Result<Dataset> {
                let id = self.vol.dataset_create(self.id, name, &dtype, &space)?;
                Ok(Dataset { vol: Arc::clone(&self.vol), id })
            }

            /// Create a child dataset with chunked storage layout
            /// (required for extensible dataspaces on storage
            /// connectors).
            pub fn create_dataset_chunked(
                &self,
                name: &str,
                dtype: Datatype,
                space: Dataspace,
                chunk: &[u64],
            ) -> H5Result<Dataset> {
                let id = self.vol.dataset_create_chunked(self.id, name, &dtype, &space, chunk)?;
                Ok(Dataset { vol: Arc::clone(&self.vol), id })
            }

            /// Open a dataset by path.
            pub fn open_dataset(&self, path: &str) -> H5Result<Dataset> {
                let id = self.vol.open_path(self.id, path)?;
                match self.vol.obj_kind(id)? {
                    ObjKind::Dataset => Ok(Dataset { vol: Arc::clone(&self.vol), id }),
                    k => Err(H5Error::WrongKind { expected: "dataset", found: k.name() }),
                }
            }

            /// List immediate children as `(name, kind)`.
            pub fn list(&self) -> H5Result<Vec<(String, ObjKind)>> {
                self.vol.list(self.id)
            }

            /// Write a typed scalar attribute.
            pub fn set_attr<T: H5Type>(&self, name: &str, value: T) -> H5Result<()> {
                self.vol.attr_write(
                    self.id,
                    name,
                    &T::DTYPE,
                    Bytes::copy_from_slice(elems_as_bytes(&[value])),
                )
            }

            /// Read a typed scalar attribute.
            pub fn attr<T: H5Type>(&self, name: &str) -> H5Result<T> {
                let (dtype, data) = self.vol.attr_read(self.id, name)?;
                if dtype != T::DTYPE {
                    return Err(H5Error::ShapeMismatch(format!(
                        "attribute {name} has type {dtype:?}"
                    )));
                }
                Ok(elems_from_bytes::<T>(&data)[0])
            }

            /// Write a typed vector attribute (stored as a fixed array).
            pub fn set_attr_vec<T: H5Type>(&self, name: &str, values: &[T]) -> H5Result<()> {
                let dtype = Datatype::vector(T::DTYPE, values.len() as u64);
                self.vol.attr_write(
                    self.id,
                    name,
                    &dtype,
                    Bytes::copy_from_slice(elems_as_bytes(values)),
                )
            }

            /// Read a typed vector attribute.
            pub fn attr_vec<T: H5Type>(&self, name: &str) -> H5Result<Vec<T>> {
                let (dtype, data) = self.vol.attr_read(self.id, name)?;
                match dtype {
                    Datatype::Array(inner, _) if *inner == T::DTYPE => {
                        Ok(elems_from_bytes::<T>(&data))
                    }
                    other => Err(H5Error::ShapeMismatch(format!(
                        "attribute {name} has type {other:?}, expected array of {:?}",
                        T::DTYPE
                    ))),
                }
            }

            /// Write a string attribute (stored as a fixed-length string).
            pub fn set_attr_str(&self, name: &str, value: &str) -> H5Result<()> {
                self.vol.attr_write(
                    self.id,
                    name,
                    &Datatype::FixedString(value.len()),
                    Bytes::copy_from_slice(value.as_bytes()),
                )
            }

            /// Read a string attribute.
            pub fn attr_str(&self, name: &str) -> H5Result<String> {
                let (dtype, data) = self.vol.attr_read(self.id, name)?;
                match dtype {
                    Datatype::FixedString(_) => String::from_utf8(data.to_vec())
                        .map_err(|_| H5Error::Format(format!("attribute {name} is not UTF-8"))),
                    other => Err(H5Error::ShapeMismatch(format!(
                        "attribute {name} has type {other:?}, expected string"
                    ))),
                }
            }
        }
    };
}

/// An open file.
pub struct H5File {
    vol: Arc<dyn Vol>,
    id: ObjId,
}

container_ops!(H5File);

impl H5File {
    /// Close the file. For producers in memory mode this is the signal
    /// that data are ready for consumers.
    pub fn close(self) -> H5Result<()> {
        self.vol.file_close(self.id)
    }

    /// The raw VOL handle (for plugin-level tests).
    pub fn raw_id(&self) -> ObjId {
        self.id
    }
}

/// An open group.
pub struct Group {
    vol: Arc<dyn Vol>,
    id: ObjId,
}

container_ops!(Group);

impl Drop for Group {
    fn drop(&mut self) {
        let _ = self.vol.object_close(self.id);
    }
}

/// An open dataset.
pub struct Dataset {
    vol: Arc<dyn Vol>,
    id: ObjId,
}

impl Dataset {
    /// The dataset's type and space.
    pub fn meta(&self) -> H5Result<(Datatype, Dataspace)> {
        self.vol.dataset_meta(self.id)
    }

    /// Shorthand: the dataspace.
    pub fn space(&self) -> H5Result<Dataspace> {
        Ok(self.meta()?.1)
    }

    /// Grow an extensible dataset to `new_dims` (collective in parallel
    /// programs). Requires chunked layout on storage connectors.
    pub fn extend(&self, new_dims: &[u64]) -> H5Result<()> {
        self.vol.dataset_extend(self.id, new_dims)
    }

    /// The dataset's chunk shape, if chunked.
    pub fn chunk(&self) -> H5Result<Option<Vec<u64>>> {
        self.vol.dataset_chunk(self.id)
    }

    /// Write the entire dataset from a typed slice.
    pub fn write_all<T: H5Type>(&self, data: &[T]) -> H5Result<()> {
        self.write_selection(&Selection::all(), data)
    }

    /// Write the elements selected by `sel` (packed row-major) from a
    /// typed slice. The data are deep-copied (safe default).
    pub fn write_selection<T: H5Type>(&self, sel: &Selection, data: &[T]) -> H5Result<()> {
        self.check_dtype::<T>()?;
        self.vol.dataset_write(
            self.id,
            sel,
            Bytes::copy_from_slice(elems_as_bytes(data)),
            Ownership::Deep,
        )
    }

    /// Write raw packed bytes with explicit ownership. `Ownership::Shallow`
    /// shares the buffer (zero-copy) — the caller must not recycle the
    /// allocation until the file is closed and consumed.
    pub fn write_bytes(&self, sel: &Selection, data: Bytes, ownership: Ownership) -> H5Result<()> {
        self.vol.dataset_write(self.id, sel, data, ownership)
    }

    /// Read the entire dataset into a typed vector.
    pub fn read_all<T: H5Type>(&self) -> H5Result<Vec<T>> {
        self.read_selection(&Selection::all())
    }

    /// Read the elements selected by `sel` into a typed vector (packed
    /// row-major).
    pub fn read_selection<T: H5Type>(&self, sel: &Selection) -> H5Result<Vec<T>> {
        self.check_dtype::<T>()?;
        let bytes = self.vol.dataset_read(self.id, sel)?;
        Ok(elems_from_bytes(&bytes))
    }

    /// Read raw packed bytes.
    pub fn read_bytes(&self, sel: &Selection) -> H5Result<Bytes> {
        self.vol.dataset_read(self.id, sel)
    }

    /// Read several selections at once, returning one packed buffer per
    /// selection (in input order). Transports that batch remote fetches
    /// answer all selections with one round of RPCs; results are
    /// byte-identical to calling [`Dataset::read_bytes`] per selection.
    pub fn read_bytes_multi(&self, sels: &[Selection]) -> H5Result<Vec<Bytes>> {
        self.vol.dataset_read_multi(self.id, sels)
    }

    /// Typed variant of [`Dataset::read_bytes_multi`].
    pub fn read_selection_multi<T: H5Type>(&self, sels: &[Selection]) -> H5Result<Vec<Vec<T>>> {
        self.check_dtype::<T>()?;
        let bufs = self.vol.dataset_read_multi(self.id, sels)?;
        Ok(bufs.iter().map(|b| elems_from_bytes(b)).collect())
    }

    /// Read one field of a compound dataset (HDF5 partial datatype I/O):
    /// extracts `field` from every selected element. The field's type must
    /// match `T` exactly.
    pub fn read_field<T: H5Type>(&self, field: &str, sel: &Selection) -> H5Result<Vec<T>> {
        let (dtype, _space) = self.meta()?;
        let fields = match &dtype {
            Datatype::Compound(fields) => fields,
            other => {
                return Err(H5Error::WrongKind {
                    expected: "compound dataset",
                    found: match other {
                        Datatype::Array(..) => "array",
                        _ => "scalar",
                    },
                })
            }
        };
        let fdef = fields
            .iter()
            .find(|f| f.name == field)
            .ok_or_else(|| H5Error::NotFound(format!("compound field {field}")))?;
        if fdef.dtype != T::DTYPE {
            return Err(H5Error::ShapeMismatch(format!(
                "field {field} has type {:?}, expected {:?}",
                fdef.dtype,
                T::DTYPE
            )));
        }
        let off = dtype.field_offset(field).expect("field exists");
        let es = dtype.size();
        let fsize = fdef.dtype.size();
        let raw = self.vol.dataset_read(self.id, sel)?;
        let n = raw.len() / es;
        let mut packed = Vec::with_capacity(n * fsize);
        for i in 0..n {
            let s = i * es + off;
            packed.extend_from_slice(&raw[s..s + fsize]);
        }
        Ok(elems_from_bytes(&packed))
    }

    /// Write a typed scalar attribute on the dataset.
    pub fn set_attr<T: H5Type>(&self, name: &str, value: T) -> H5Result<()> {
        self.vol.attr_write(
            self.id,
            name,
            &T::DTYPE,
            Bytes::copy_from_slice(elems_as_bytes(&[value])),
        )
    }

    /// Read a typed scalar attribute from the dataset.
    pub fn attr<T: H5Type>(&self, name: &str) -> H5Result<T> {
        let (dtype, data) = self.vol.attr_read(self.id, name)?;
        if dtype != T::DTYPE {
            return Err(H5Error::ShapeMismatch(format!("attribute {name} has type {dtype:?}")));
        }
        Ok(elems_from_bytes::<T>(&data)[0])
    }

    fn check_dtype<T: H5Type>(&self) -> H5Result<()> {
        let (dtype, _) = self.meta()?;
        // Element-size compatibility is what the raw byte path needs; the
        // typed path additionally requires the exact scalar type.
        if dtype != T::DTYPE {
            return Err(H5Error::ShapeMismatch(format!(
                "dataset type {dtype:?} does not match element type {:?}",
                T::DTYPE
            )));
        }
        Ok(())
    }
}

impl Drop for Dataset {
    fn drop(&mut self) {
        let _ = self.vol.object_close(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("minih5-api-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn typed_roundtrip_via_public_api() {
        let h5 = H5::native();
        let path = tmp("api.nh5");
        let f = h5.create_file(&path).unwrap();
        let g = f.create_group("g").unwrap();
        let d = g.create_dataset("x", Datatype::Float64, Dataspace::simple(&[3, 2])).unwrap();
        d.write_all(&[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        d.set_attr("scale", 2.5f64).unwrap();
        f.close().unwrap();

        let f = h5.open_file(&path).unwrap();
        let d = f.open_dataset("g/x").unwrap();
        assert_eq!(d.read_all::<f64>().unwrap(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(d.attr::<f64>("scale").unwrap(), 2.5);
        let col = d.read_selection::<f64>(&Selection::block(&[0, 1], &[3, 1])).unwrap();
        assert_eq!(col, vec![2.0, 4.0, 6.0]);
        f.close().unwrap();
    }

    #[test]
    fn type_mismatch_rejected() {
        let h5 = H5::native();
        let path = tmp("mismatch.nh5");
        let f = h5.create_file(&path).unwrap();
        let d = f.create_dataset("x", Datatype::UInt32, Dataspace::simple(&[2])).unwrap();
        assert!(d.write_all(&[1.0f32, 2.0]).is_err());
        assert!(d.write_all(&[1u32, 2]).is_ok());
        f.close().unwrap();
    }

    #[test]
    fn open_dataset_on_group_fails() {
        let h5 = H5::native();
        let path = tmp("kind.nh5");
        let f = h5.create_file(&path).unwrap();
        f.create_group("g").unwrap();
        f.create_dataset("d", Datatype::UInt8, Dataspace::simple(&[1])).unwrap();
        assert!(matches!(f.open_dataset("g"), Err(H5Error::WrongKind { .. })));
        assert!(matches!(f.open_group("d"), Err(H5Error::WrongKind { .. })));
        f.close().unwrap();
    }

    #[test]
    fn open_default_uses_thread_registry() {
        use crate::vol::set_thread_vol;
        let native: Arc<dyn Vol> = Arc::new(NativeVol::serial());
        {
            let _g = set_thread_vol(Arc::clone(&native));
            let h5 = H5::open_default();
            assert!(Arc::ptr_eq(h5.vol(), &native));
        }
        // Without a registration we fall back to a fresh native connector.
        let h5 = H5::open_default();
        assert_eq!(h5.vol_name(), "native");
    }

    #[test]
    fn missing_path_is_not_found() {
        let h5 = H5::native();
        let path = tmp("missing.nh5");
        let f = h5.create_file(&path).unwrap();
        assert!(matches!(f.open_dataset("nope"), Err(H5Error::NotFound(_))));
        f.close().unwrap();
    }
}

#[cfg(test)]
mod rich_attr_tests {
    use super::*;
    use crate::datatype::CompoundField;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("minih5-api-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn vector_and_string_attributes() {
        let h5 = H5::native();
        let path = tmp("richattrs.nh5");
        let f = h5.create_file(&path).unwrap();
        f.set_attr_vec("origin", &[0.5f64, 1.5, 2.5]).unwrap();
        f.set_attr_str("code", "nyx-sim v1").unwrap();
        let d = f.create_dataset("d", Datatype::UInt8, Dataspace::simple(&[1])).unwrap();
        d.write_all(&[0u8]).unwrap();
        f.close().unwrap();

        let f = h5.open_file(&path).unwrap();
        assert_eq!(f.attr_vec::<f64>("origin").unwrap(), vec![0.5, 1.5, 2.5]);
        assert_eq!(f.attr_str("code").unwrap(), "nyx-sim v1");
        // Type mismatches are rejected.
        assert!(f.attr_vec::<u32>("origin").is_err());
        assert!(f.attr_str("origin").is_err());
        assert!(f.attr::<f64>("code").is_err());
        f.close().unwrap();
    }

    #[test]
    fn compound_field_partial_read() {
        let h5 = H5::native();
        let path = tmp("compound.nh5");
        let ptype = Datatype::Compound(vec![
            CompoundField { name: "id".into(), dtype: Datatype::UInt32 },
            CompoundField { name: "mass".into(), dtype: Datatype::Float64 },
        ]);
        let f = h5.create_file(&path).unwrap();
        let d = f.create_dataset("parts", ptype, Dataspace::simple(&[4])).unwrap();
        let mut raw = Vec::new();
        for i in 0..4u32 {
            raw.extend_from_slice(&i.to_le_bytes());
            raw.extend_from_slice(&(i as f64 * 1.5).to_le_bytes());
        }
        d.write_bytes(&Selection::all(), raw.into(), Ownership::Deep).unwrap();
        f.close().unwrap();

        let f = h5.open_file(&path).unwrap();
        let d = f.open_dataset("parts").unwrap();
        // Only the masses cross the read path's extraction.
        let masses: Vec<f64> = d.read_field("mass", &Selection::all()).unwrap();
        assert_eq!(masses, vec![0.0, 1.5, 3.0, 4.5]);
        let ids: Vec<u32> = d.read_field("id", &Selection::block(&[1], &[2])).unwrap();
        assert_eq!(ids, vec![1, 2]);
        // Errors: missing field, wrong type, non-compound dataset.
        assert!(d.read_field::<u64>("mass", &Selection::all()).is_err());
        assert!(d.read_field::<f64>("ghost", &Selection::all()).is_err());
        f.close().unwrap();
    }
}
