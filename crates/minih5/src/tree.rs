//! The in-memory metadata hierarchy (paper Fig. 1).
//!
//! LowFive "builds in memory a replica of the HDF5 metadata hierarchy":
//! files contain groups, groups contain datasets, every node can carry
//! attributes, and datasets record the data *regions* written into them —
//! each region a (selection, packed bytes) pair, with deep or shallow
//! ownership exactly as in the figure (`ownership: lowfive` vs
//! `ownership: user`). The same arena also backs the native VOL's view of
//! an on-disk file while it is open.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::datatype::Datatype;
use crate::error::{H5Error, H5Result};
use crate::selection::{overlap_runs, Selection};
use crate::space::Dataspace;

/// Index of a node within a [`Hierarchy`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// What kind of object a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    File,
    Group,
    Dataset,
}

impl ObjKind {
    pub fn name(self) -> &'static str {
        match self {
            ObjKind::File => "file",
            ObjKind::Group => "group",
            ObjKind::Dataset => "dataset",
        }
    }
}

/// Who owns a written region's bytes (Fig. 1's `ownership` field).
///
/// * `Deep` — LowFive copied the data; the writer may immediately reuse its
///   buffer ("ownership: lowfive").
/// * `Shallow` — only a reference is kept; the writer must keep the buffer
///   unchanged until the consumer has read it ("ownership: user"). In this
///   Rust implementation a shallow region shares the writer's refcounted
///   allocation, so the zero-copy performance benefit is real while the
///   use-after-modify hazard of the C original is ruled out by `Bytes`'
///   immutability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ownership {
    Deep,
    Shallow,
}

/// One write operation recorded on a dataset: `data` holds the selected
/// elements packed in run (row-major) order.
#[derive(Debug, Clone)]
pub struct DataRegion {
    pub selection: Selection,
    pub data: Bytes,
    pub ownership: Ownership,
}

/// Node payloads.
#[derive(Debug, Clone)]
pub enum NodeKind {
    File {
        filename: String,
    },
    Group,
    Dataset {
        dtype: Datatype,
        space: Dataspace,
        /// Chunk shape for chunked-layout datasets (storage hint; the
        /// in-memory representation is region-based either way).
        chunk: Option<Vec<u64>>,
        regions: Vec<DataRegion>,
    },
}

/// A tree node: name, links, attributes, payload.
#[derive(Debug, Clone)]
pub struct Node {
    pub name: String,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    pub attributes: BTreeMap<String, (Datatype, Bytes)>,
    pub kind: NodeKind,
}

impl Node {
    pub fn obj_kind(&self) -> ObjKind {
        match self.kind {
            NodeKind::File { .. } => ObjKind::File,
            NodeKind::Group => ObjKind::Group,
            NodeKind::Dataset { .. } => ObjKind::Dataset,
        }
    }
}

/// Arena of metadata nodes holding any number of open files.
#[derive(Debug, Default, Clone)]
pub struct Hierarchy {
    nodes: Vec<Node>,
    files: BTreeMap<String, NodeId>,
}

impl Hierarchy {
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Register a new file node.
    pub fn create_file(&mut self, filename: &str) -> H5Result<NodeId> {
        if self.files.contains_key(filename) {
            return Err(H5Error::AlreadyExists(filename.to_string()));
        }
        let id = self.alloc(Node {
            name: filename.to_string(),
            parent: None,
            children: Vec::new(),
            attributes: BTreeMap::new(),
            kind: NodeKind::File { filename: filename.to_string() },
        });
        self.files.insert(filename.to_string(), id);
        Ok(id)
    }

    /// Look up an open file by name.
    pub fn file(&self, filename: &str) -> Option<NodeId> {
        self.files.get(filename).copied()
    }

    /// Names of all files in the arena.
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Drop a file's entry (its nodes stay in the arena; ids remain valid
    /// for handles already open, mirroring HDF5's delayed file teardown).
    pub fn remove_file(&mut self, filename: &str) -> H5Result<()> {
        self.files
            .remove(filename)
            .map(|_| ())
            .ok_or_else(|| H5Error::NotFound(filename.to_string()))
    }

    fn child_by_name(&self, parent: NodeId, name: &str) -> Option<NodeId> {
        self.node(parent).children.iter().copied().find(|&c| self.node(c).name == name)
    }

    /// Create a group under `parent`.
    pub fn create_group(&mut self, parent: NodeId, name: &str) -> H5Result<NodeId> {
        self.create_child(parent, name, NodeKind::Group)
    }

    /// Create a dataset under `parent`.
    pub fn create_dataset(
        &mut self,
        parent: NodeId,
        name: &str,
        dtype: Datatype,
        space: Dataspace,
    ) -> H5Result<NodeId> {
        self.create_child(
            parent,
            name,
            NodeKind::Dataset { dtype, space, chunk: None, regions: Vec::new() },
        )
    }

    /// Create a chunked-layout dataset under `parent`.
    pub fn create_dataset_chunked(
        &mut self,
        parent: NodeId,
        name: &str,
        dtype: Datatype,
        space: Dataspace,
        chunk: Vec<u64>,
    ) -> H5Result<NodeId> {
        if chunk.len() != space.rank() || chunk.contains(&0) {
            return Err(H5Error::ShapeMismatch(format!(
                "chunk shape {chunk:?} invalid for rank {}",
                space.rank()
            )));
        }
        self.create_child(
            parent,
            name,
            NodeKind::Dataset { dtype, space, chunk: Some(chunk), regions: Vec::new() },
        )
    }

    /// Chunk shape of a dataset (None = contiguous).
    pub fn dataset_chunk(&self, id: NodeId) -> H5Result<Option<Vec<u64>>> {
        match &self.node(id).kind {
            NodeKind::Dataset { chunk, .. } => Ok(chunk.clone()),
            _ => Err(H5Error::WrongKind {
                expected: "dataset",
                found: self.node(id).obj_kind().name(),
            }),
        }
    }

    /// Grow an extensible dataset's extent (first dimension only; see
    /// [`Dataspace::can_extend_to`]). Previously written regions keep
    /// their meaning because row-major offsets are stable under
    /// leading-dimension growth.
    pub fn extend_dataset(&mut self, id: NodeId, new_dims: &[u64]) -> H5Result<()> {
        match &mut self.node_mut(id).kind {
            NodeKind::Dataset { space, .. } => space.extend_to(new_dims),
            _ => Err(H5Error::WrongKind {
                expected: "dataset",
                found: self.node(id).obj_kind().name(),
            }),
        }
    }

    fn create_child(&mut self, parent: NodeId, name: &str, kind: NodeKind) -> H5Result<NodeId> {
        if name.is_empty() || name.contains('/') {
            return Err(H5Error::ShapeMismatch(format!("invalid object name {name:?}")));
        }
        if matches!(self.node(parent).kind, NodeKind::Dataset { .. }) {
            return Err(H5Error::WrongKind { expected: "file or group", found: "dataset" });
        }
        if self.child_by_name(parent, name).is_some() {
            return Err(H5Error::AlreadyExists(name.to_string()));
        }
        let node = Node {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            attributes: BTreeMap::new(),
            kind,
        };
        let id = self.alloc(node);
        self.node_mut(parent).children.push(id);
        Ok(id)
    }

    /// Resolve a `/`-separated path relative to `base`.
    pub fn resolve(&self, base: NodeId, path: &str) -> H5Result<NodeId> {
        let mut cur = base;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            cur =
                self.child_by_name(cur, part).ok_or_else(|| H5Error::NotFound(path.to_string()))?;
        }
        Ok(cur)
    }

    /// Full path of a node from its file root (diagnostic).
    pub fn path_of(&self, id: NodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = self.node(c);
            if n.parent.is_some() {
                parts.push(n.name.clone());
            }
            cur = n.parent;
        }
        parts.reverse();
        format!("/{}", parts.join("/"))
    }

    /// Children of a node as `(name, kind)` pairs.
    pub fn children_of(&self, id: NodeId) -> Vec<(String, ObjKind)> {
        self.node(id)
            .children
            .iter()
            .map(|&c| {
                let n = self.node(c);
                (n.name.clone(), n.obj_kind())
            })
            .collect()
    }

    /// Dataset metadata accessor.
    pub fn dataset_meta(&self, id: NodeId) -> H5Result<(Datatype, Dataspace)> {
        match &self.node(id).kind {
            NodeKind::Dataset { dtype, space, .. } => Ok((dtype.clone(), space.clone())),
            other => Err(H5Error::WrongKind {
                expected: "dataset",
                found: match other {
                    NodeKind::File { .. } => "file",
                    NodeKind::Group => "group",
                    NodeKind::Dataset { .. } => unreachable!(),
                },
            }),
        }
    }

    /// Record a write: `data` holds the packed selected elements.
    pub fn write_region(
        &mut self,
        id: NodeId,
        selection: Selection,
        data: Bytes,
        ownership: Ownership,
    ) -> H5Result<()> {
        let (dtype, space) = self.dataset_meta(id)?;
        selection.validate(&space)?;
        let expect = selection.npoints(&space) * dtype.size() as u64;
        if data.len() as u64 != expect {
            return Err(H5Error::ShapeMismatch(format!(
                "write of {} bytes into a selection of {} bytes",
                data.len(),
                expect
            )));
        }
        let data = match ownership {
            Ownership::Deep => Bytes::copy_from_slice(&data),
            Ownership::Shallow => data,
        };
        // Pin relative selections to the extent at write time: `All` on an
        // extensible dataset must keep meaning "everything as of this
        // write" after the dataset grows.
        let selection = pin_selection(selection, &space);
        match &mut self.node_mut(id).kind {
            NodeKind::Dataset { regions, .. } => {
                regions.push(DataRegion { selection, data, ownership });
                Ok(())
            }
            _ => unreachable!("dataset_meta verified the kind"),
        }
    }

    /// Assemble the bytes selected by `sel` from the recorded regions
    /// (later writes win on overlap). Unwritten elements read as zero, as
    /// with HDF5's default fill value.
    pub fn read_region(&self, id: NodeId, sel: &Selection) -> H5Result<Bytes> {
        let (dtype, space) = self.dataset_meta(id)?;
        sel.validate(&space)?;
        let es = dtype.size();
        let want = sel.runs(&space);
        let mut out = vec![0u8; (sel.npoints(&space) as usize) * es];
        if let NodeKind::Dataset { regions, .. } = &self.node(id).kind {
            for reg in regions {
                let have = reg.selection.runs(&space);
                for ov in overlap_runs(&have, &want) {
                    let src = (ov.a_off as usize) * es;
                    let dst = (ov.b_off as usize) * es;
                    let n = (ov.len as usize) * es;
                    out[dst..dst + n].copy_from_slice(&reg.data[src..src + n]);
                }
            }
        }
        Ok(Bytes::from(out))
    }

    /// Regions written to a dataset.
    pub fn regions(&self, id: NodeId) -> H5Result<&[DataRegion]> {
        match &self.node(id).kind {
            NodeKind::Dataset { regions, .. } => Ok(regions),
            _ => Err(H5Error::WrongKind {
                expected: "dataset",
                found: self.node(id).obj_kind().name(),
            }),
        }
    }

    /// Set an attribute on any object.
    pub fn set_attr(&mut self, id: NodeId, name: &str, dtype: Datatype, data: Bytes) {
        self.node_mut(id).attributes.insert(name.to_string(), (dtype, data));
    }

    /// Read an attribute.
    pub fn attr(&self, id: NodeId, name: &str) -> H5Result<(Datatype, Bytes)> {
        self.node(id)
            .attributes
            .get(name)
            .cloned()
            .ok_or_else(|| H5Error::NotFound(format!("attribute {name}")))
    }

    /// Total nodes in the arena (diagnostic).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Replace extent-relative selections (`All`, recursively inside unions)
/// with absolute blocks over the current dims.
fn pin_selection(sel: Selection, space: &Dataspace) -> Selection {
    match sel {
        Selection::All if space.rank() > 0 => {
            Selection::block(&vec![0; space.rank()], space.dims())
        }
        Selection::Union(members) => {
            Selection::Union(members.into_iter().map(|m| pin_selection(m, space)).collect())
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_file(h: &mut Hierarchy) -> (NodeId, NodeId) {
        // Reproduce Fig. 1: step1.h5 / group1 / grid, group2 / particles.
        let f = h.create_file("step1.h5").unwrap();
        let g1 = h.create_group(f, "group1").unwrap();
        let g2 = h.create_group(f, "group2").unwrap();
        let grid =
            h.create_dataset(g1, "grid", Datatype::UInt64, Dataspace::simple(&[4, 4, 4])).unwrap();
        let _particles = h
            .create_dataset(
                g2,
                "particles",
                Datatype::vector(Datatype::Float32, 3),
                Dataspace::simple(&[100]),
            )
            .unwrap();
        (f, grid)
    }

    #[test]
    fn figure1_hierarchy_shape() {
        let mut h = Hierarchy::new();
        let (f, grid) = grid_file(&mut h);
        assert_eq!(h.node(f).obj_kind(), ObjKind::File);
        let kids = h.children_of(f);
        assert_eq!(kids.len(), 2);
        assert!(kids.iter().all(|(_, k)| *k == ObjKind::Group));
        assert_eq!(h.path_of(grid), "/group1/grid");
        let resolved = h.resolve(f, "group1/grid").unwrap();
        assert_eq!(resolved, grid);
        let (dt, sp) = h.dataset_meta(grid).unwrap();
        assert_eq!(dt, Datatype::UInt64);
        assert_eq!(sp.npoints(), 64);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        h.create_group(f, "g").unwrap();
        assert!(matches!(h.create_group(f, "g"), Err(H5Error::AlreadyExists(_))));
        assert!(matches!(h.create_file("a.h5"), Err(H5Error::AlreadyExists(_))));
    }

    #[test]
    fn invalid_names_rejected() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        assert!(h.create_group(f, "a/b").is_err());
        assert!(h.create_group(f, "").is_err());
    }

    #[test]
    fn cannot_nest_under_dataset() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        let d = h.create_dataset(f, "d", Datatype::UInt8, Dataspace::simple(&[4])).unwrap();
        assert!(matches!(h.create_group(d, "g"), Err(H5Error::WrongKind { .. })));
    }

    #[test]
    fn write_read_full() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        let d = h.create_dataset(f, "d", Datatype::UInt64, Dataspace::simple(&[8])).unwrap();
        let vals: Vec<u8> = (0..8u64).flat_map(|v| v.to_le_bytes()).collect();
        h.write_region(d, Selection::all(), Bytes::from(vals.clone()), Ownership::Deep).unwrap();
        let out = h.read_region(d, &Selection::all()).unwrap();
        assert_eq!(&out[..], &vals[..]);
    }

    #[test]
    fn read_assembles_from_multiple_regions() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        let d = h.create_dataset(f, "d", Datatype::UInt8, Dataspace::simple(&[10])).unwrap();
        // Two disjoint writes; one unwritten hole in the middle.
        h.write_region(
            d,
            Selection::block(&[0], &[3]),
            Bytes::from_static(&[1, 2, 3]),
            Ownership::Deep,
        )
        .unwrap();
        h.write_region(
            d,
            Selection::block(&[6], &[2]),
            Bytes::from_static(&[7, 8]),
            Ownership::Deep,
        )
        .unwrap();
        let out = h.read_region(d, &Selection::all()).unwrap();
        assert_eq!(&out[..], &[1, 2, 3, 0, 0, 0, 7, 8, 0, 0]);
        // Partial read crossing a region boundary.
        let part = h.read_region(d, &Selection::block(&[2], &[5])).unwrap();
        assert_eq!(&part[..], &[3, 0, 0, 0, 7]);
    }

    #[test]
    fn later_writes_win_on_overlap() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        let d = h.create_dataset(f, "d", Datatype::UInt8, Dataspace::simple(&[4])).unwrap();
        h.write_region(d, Selection::all(), Bytes::from_static(&[1, 1, 1, 1]), Ownership::Deep)
            .unwrap();
        h.write_region(
            d,
            Selection::block(&[1], &[2]),
            Bytes::from_static(&[9, 9]),
            Ownership::Deep,
        )
        .unwrap();
        let out = h.read_region(d, &Selection::all()).unwrap();
        assert_eq!(&out[..], &[1, 9, 9, 1]);
    }

    #[test]
    fn shallow_regions_share_memory_deep_copies() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        let d = h.create_dataset(f, "d", Datatype::UInt8, Dataspace::simple(&[3])).unwrap();
        let buf = Bytes::from(vec![5u8, 6, 7]);
        h.write_region(d, Selection::all(), buf.clone(), Ownership::Shallow).unwrap();
        let regions = h.regions(d).unwrap();
        // Shallow: same allocation (pointer equality of the slices).
        assert_eq!(regions[0].data.as_ptr(), buf.as_ptr());
        let mut h2 = Hierarchy::new();
        let f2 = h2.create_file("b.h5").unwrap();
        let d2 = h2.create_dataset(f2, "d", Datatype::UInt8, Dataspace::simple(&[3])).unwrap();
        h2.write_region(d2, Selection::all(), buf.clone(), Ownership::Deep).unwrap();
        assert_ne!(h2.regions(d2).unwrap()[0].data.as_ptr(), buf.as_ptr());
    }

    #[test]
    fn write_size_validated() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        let d = h.create_dataset(f, "d", Datatype::UInt64, Dataspace::simple(&[4])).unwrap();
        let r = h.write_region(d, Selection::all(), Bytes::from_static(&[0; 7]), Ownership::Deep);
        assert!(matches!(r, Err(H5Error::ShapeMismatch(_))));
    }

    #[test]
    fn attributes_roundtrip() {
        let mut h = Hierarchy::new();
        let f = h.create_file("a.h5").unwrap();
        h.set_attr(f, "version", Datatype::UInt32, Bytes::from_static(&[1, 0, 0, 0]));
        let (dt, b) = h.attr(f, "version").unwrap();
        assert_eq!(dt, Datatype::UInt32);
        assert_eq!(&b[..], &[1, 0, 0, 0]);
        assert!(h.attr(f, "missing").is_err());
    }

    #[test]
    fn remove_file_frees_the_name() {
        let mut h = Hierarchy::new();
        h.create_file("a.h5").unwrap();
        h.remove_file("a.h5").unwrap();
        assert!(h.file("a.h5").is_none());
        assert!(h.create_file("a.h5").is_ok());
        assert!(h.remove_file("zzz").is_err());
    }
}
