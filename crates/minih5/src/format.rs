//! The native on-disk file format (`.nh5`).
//!
//! Layout:
//!
//! ```text
//! [ header: magic(8) version(4) reserved(4) ]
//! [ data region: one contiguous extent per dataset, in creation order ]
//! [ metadata blob: groups, datasets (path, type, space, extent offset),
//!   attributes ]
//! [ trailer: meta_offset(8) meta_len(8) magic(8) ]
//! ```
//!
//! Dataset extents are assigned deterministically at creation time, so in a
//! parallel program every rank computes identical offsets from the same
//! collective `dataset_create` calls and can then write its own hyperslabs
//! with positioned writes — the moral equivalent of collective MPI-IO into
//! a single shared HDF5 file. Rank 0 writes the header, the metadata blob,
//! and the trailer.

use std::fs::File;
use std::io::Read;
use std::os::unix::fs::FileExt;

use bytes::Bytes;

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::datatype::Datatype;
use crate::error::{H5Error, H5Result};
use crate::space::Dataspace;

pub const MAGIC: &[u8; 8] = b"MINIH5F\0";
pub const TRAILER_MAGIC: &[u8; 8] = b"MINIH5T\0";
pub const VERSION: u32 = 1;
/// Size of the fixed header; the data region starts here.
pub const HEADER_LEN: u64 = 16;
const TRAILER_LEN: u64 = 24;

/// Chunked-layout storage map: chunk shape plus the file offset of every
/// allocated chunk, keyed by chunk grid coordinates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkIndex {
    pub chunk: Vec<u64>,
    pub offsets: Vec<(Vec<u64>, u64)>,
}

/// Metadata record for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetEntry {
    /// Full path from the file root, e.g. `group1/grid`.
    pub path: String,
    pub dtype: Datatype,
    pub space: Dataspace,
    /// Byte offset of the dataset's contiguous extent in the file
    /// (unused for chunked or in-memory datasets).
    pub offset: u64,
    /// Chunked storage map, when the dataset has chunked layout.
    pub chunks: Option<ChunkIndex>,
}

/// Metadata record for one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrEntry {
    /// Path of the owning object (empty string = the file root).
    pub owner: String,
    pub name: String,
    pub dtype: Datatype,
    pub data: Bytes,
}

/// The whole metadata blob.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileMeta {
    /// Group paths in creation order (parents precede children).
    pub groups: Vec<String>,
    pub datasets: Vec<DatasetEntry>,
    pub attrs: Vec<AttrEntry>,
}

impl Encode for FileMeta {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.groups.len() as u64);
        for g in &self.groups {
            w.put_str(g);
        }
        w.put_u64(self.datasets.len() as u64);
        for d in &self.datasets {
            w.put_str(&d.path);
            w.put(&d.dtype);
            w.put(&d.space);
            w.put_u64(d.offset);
            match &d.chunks {
                None => w.put_u8(0),
                Some(ci) => {
                    w.put_u8(1);
                    w.put_u64s(&ci.chunk);
                    w.put_u64(ci.offsets.len() as u64);
                    for (coord, off) in &ci.offsets {
                        w.put_u64s(coord);
                        w.put_u64(*off);
                    }
                }
            }
        }
        w.put_u64(self.attrs.len() as u64);
        for a in &self.attrs {
            w.put_str(&a.owner);
            w.put_str(&a.name);
            w.put(&a.dtype);
            w.put_bytes(&a.data);
        }
    }
}

impl Decode for FileMeta {
    fn decode(r: &mut Reader<'_>) -> H5Result<Self> {
        let ng = r.get_count(8)?; // a string is at least its length prefix
        let groups = (0..ng).map(|_| r.get_str()).collect::<H5Result<Vec<_>>>()?;
        let nd = r.get_count(8)?;
        let mut datasets = Vec::with_capacity(nd);
        for _ in 0..nd {
            let path = r.get_str()?;
            let dtype = r.get()?;
            let space = r.get()?;
            let offset = r.get_u64()?;
            let chunks = match r.get_u8()? {
                0 => None,
                1 => {
                    let chunk = r.get_u64s()?;
                    let n = r.get_count(16)?; // coord length prefix + offset
                    let mut offsets = Vec::with_capacity(n);
                    for _ in 0..n {
                        let coord = r.get_u64s()?;
                        let off = r.get_u64()?;
                        offsets.push((coord, off));
                    }
                    Some(ChunkIndex { chunk, offsets })
                }
                t => return Err(H5Error::Format(format!("bad layout tag {t}"))),
            };
            datasets.push(DatasetEntry { path, dtype, space, offset, chunks });
        }
        let na = r.get_count(8)?;
        let mut attrs = Vec::with_capacity(na);
        for _ in 0..na {
            attrs.push(AttrEntry {
                owner: r.get_str()?,
                name: r.get_str()?,
                dtype: r.get()?,
                data: Bytes::copy_from_slice(r.get_bytes()?),
            });
        }
        Ok(FileMeta { groups, datasets, attrs })
    }
}

/// Export the metadata blob of the tree rooted at `root`.
///
/// Dataset `offset`s are taken from `offsets` when provided (native file
/// layout) and zero otherwise (in-memory trees shipped over the wire by
/// the LowFive distributed VOL).
pub fn export_meta(
    hier: &crate::tree::Hierarchy,
    root: crate::tree::NodeId,
    offsets: Option<&std::collections::HashMap<crate::tree::NodeId, u64>>,
) -> FileMeta {
    export_meta_with_chunks(hier, root, offsets, None)
}

/// As [`export_meta`], additionally recording chunked storage maps.
pub fn export_meta_with_chunks(
    hier: &crate::tree::Hierarchy,
    root: crate::tree::NodeId,
    offsets: Option<&std::collections::HashMap<crate::tree::NodeId, u64>>,
    chunks: Option<&std::collections::HashMap<crate::tree::NodeId, ChunkIndex>>,
) -> FileMeta {
    use crate::tree::ObjKind;
    let mut meta = FileMeta::default();
    // Pre-order DFS: parents precede children, preserving creation order.
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let node = hier.node(id);
        let path = hier.path_of(id).trim_start_matches('/').to_string();
        match node.obj_kind() {
            ObjKind::File => {}
            ObjKind::Group => meta.groups.push(path.clone()),
            ObjKind::Dataset => {
                let (dtype, space) = hier.dataset_meta(id).expect("dataset node");
                let offset = offsets.and_then(|m| m.get(&id).copied()).unwrap_or(0);
                // Prefer the storage connector's chunk map; otherwise ship
                // the chunk shape recorded in the tree (offsets are
                // meaningless off-storage).
                let ci = chunks.and_then(|m| m.get(&id).cloned()).or_else(|| {
                    hier.dataset_chunk(id)
                        .ok()
                        .flatten()
                        .map(|chunk| ChunkIndex { chunk, offsets: Vec::new() })
                });
                meta.datasets.push(DatasetEntry {
                    path: path.clone(),
                    dtype,
                    space,
                    offset,
                    chunks: ci,
                });
            }
        }
        for (name, (dtype, data)) in node.attributes.iter() {
            meta.attrs.push(AttrEntry {
                owner: path.clone(),
                name: name.clone(),
                dtype: dtype.clone(),
                data: data.clone(),
            });
        }
        for &c in node.children.iter().rev() {
            stack.push(c);
        }
    }
    meta
}

/// Rebuild a tree under `root` from a metadata blob. Returns each
/// dataset's node id keyed by path.
pub fn import_meta(
    hier: &mut crate::tree::Hierarchy,
    root: crate::tree::NodeId,
    meta: &FileMeta,
) -> H5Result<std::collections::HashMap<String, crate::tree::NodeId>> {
    let mut dataset_nodes = std::collections::HashMap::new();
    for g in &meta.groups {
        let (parent_path, leaf) = split_meta_path(g);
        let parent = hier.resolve(root, parent_path)?;
        hier.create_group(parent, leaf)?;
    }
    for d in &meta.datasets {
        let (parent_path, leaf) = split_meta_path(&d.path);
        let parent = hier.resolve(root, parent_path)?;
        let node = match &d.chunks {
            Some(ci) => hier.create_dataset_chunked(
                parent,
                leaf,
                d.dtype.clone(),
                d.space.clone(),
                ci.chunk.clone(),
            )?,
            None => hier.create_dataset(parent, leaf, d.dtype.clone(), d.space.clone())?,
        };
        dataset_nodes.insert(d.path.clone(), node);
    }
    for a in &meta.attrs {
        let owner = hier.resolve(root, &a.owner)?;
        hier.set_attr(owner, &a.name, a.dtype.clone(), a.data.clone());
    }
    Ok(dataset_nodes)
}

/// Split `a/b/c` into (`a/b`, `c`); a bare name has an empty parent.
pub fn split_meta_path(path: &str) -> (&str, &str) {
    match path.rfind('/') {
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    }
}

/// Write the fixed header at offset 0.
pub fn write_header(f: &File) -> H5Result<()> {
    let mut w = Writer::new();
    w.put_raw(MAGIC);
    w.put_u32(VERSION);
    w.put_u32(0);
    f.write_all_at(&w.finish(), 0)?;
    Ok(())
}

/// Append the metadata blob at `at` and the trailer after it.
pub fn write_metadata(f: &File, at: u64, meta: &FileMeta) -> H5Result<()> {
    let blob = meta.to_bytes();
    f.write_all_at(&blob, at)?;
    let mut w = Writer::new();
    w.put_u64(at);
    w.put_u64(blob.len() as u64);
    w.put_raw(TRAILER_MAGIC);
    f.write_all_at(&w.finish(), at + blob.len() as u64)?;
    f.sync_data()?;
    Ok(())
}

/// Verify the header and read the metadata blob via the trailer.
pub fn read_metadata(f: &mut File) -> H5Result<FileMeta> {
    let len = f.metadata()?.len();
    if len < HEADER_LEN + TRAILER_LEN {
        return Err(H5Error::Format("file too short to be a minih5 file".into()));
    }
    let mut header = [0u8; HEADER_LEN as usize];
    f.read_exact_at(&mut header, 0)?;
    if &header[..8] != MAGIC {
        return Err(H5Error::Format("bad magic: not a minih5 file".into()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(H5Error::Format(format!("unsupported format version {version}")));
    }
    let mut trailer = [0u8; TRAILER_LEN as usize];
    f.read_exact_at(&mut trailer, len - TRAILER_LEN)?;
    if &trailer[16..24] != TRAILER_MAGIC {
        return Err(H5Error::Format("bad trailer magic (file not closed?)".into()));
    }
    let meta_off = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
    let meta_len = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    if meta_off + meta_len + TRAILER_LEN > len {
        return Err(H5Error::Format("trailer points past end of file".into()));
    }
    let mut blob = vec![0u8; meta_len as usize];
    f.read_exact_at(&mut blob, meta_off)?;
    let mut _unused = Vec::new();
    let _ = f.read(&mut _unused); // keep the &mut File signature honest
    FileMeta::from_bytes(&blob)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> FileMeta {
        FileMeta {
            groups: vec!["group1".into(), "group1/nested".into()],
            datasets: vec![DatasetEntry {
                path: "group1/grid".into(),
                dtype: Datatype::UInt64,
                space: Dataspace::simple(&[4, 4]),
                offset: HEADER_LEN,
                chunks: None,
            }],
            attrs: vec![AttrEntry {
                owner: "".into(),
                name: "step".into(),
                dtype: Datatype::UInt32,
                data: Bytes::from_static(&[2, 0, 0, 0]),
            }],
        }
    }

    #[test]
    fn meta_codec_roundtrip() {
        let m = sample_meta();
        assert_eq!(FileMeta::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn header_data_metadata_trailer_roundtrip() {
        let dir = std::env::temp_dir().join("minih5-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.nh5");
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        write_header(&f).unwrap();
        // 128 bytes of dataset data.
        f.write_all_at(&[0xCD; 128], HEADER_LEN).unwrap();
        let m = sample_meta();
        write_metadata(&f, HEADER_LEN + 128, &m).unwrap();
        drop(f);

        let mut f = File::open(&path).unwrap();
        assert_eq!(read_metadata(&mut f).unwrap(), m);
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("minih5-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, vec![7u8; 256]).unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_metadata(&mut f), Err(H5Error::Format(_))));
    }

    #[test]
    fn rejects_truncated_file() {
        let dir = std::env::temp_dir().join("minih5-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.nh5");
        std::fs::write(&path, b"MINIH5F\0").unwrap();
        let mut f = File::open(&path).unwrap();
        assert!(matches!(read_metadata(&mut f), Err(H5Error::Format(_))));
    }
}
