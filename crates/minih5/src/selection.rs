//! Selections: HDF5-style hyperslab and point selections, with the algebra
//! LowFive's redistribution is built on.
//!
//! The two load-bearing operations are:
//!
//! * [`Selection::runs`] — decompose a selection into maximal **contiguous
//!   runs** of the row-major linearization of its dataspace. Packing a
//!   selection then becomes a handful of `memcpy`s instead of a per-element
//!   loop; the paper credits exactly this ("LowFive optimizes the
//!   serialization of contiguous regions") for beating hand-written MPI at
//!   small scale (§IV-B-c).
//! * [`overlap_runs`] — intersect two sorted run lists while tracking each
//!   side's *packed* offsets. This single primitive implements producer-side
//!   extraction ("which bytes of my packed write match your query") and
//!   consumer-side scatter ("where do the received bytes land in my read
//!   buffer"), for arbitrary selections, not just boxes.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::{H5Error, H5Result};
use crate::space::Dataspace;

/// A maximal contiguous interval `[offset, offset+len)` of the row-major
/// linearization of a dataspace, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    pub offset: u64,
    pub len: u64,
}

/// A piece of the intersection of two selections: `len` elements at linear
/// `offset`, which sit at packed element offset `a_off` within selection
/// A's packed buffer and `b_off` within selection B's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapRun {
    pub offset: u64,
    pub len: u64,
    pub a_off: u64,
    pub b_off: u64,
}

/// An axis-aligned box with inclusive lower and exclusive upper corners.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BBox {
    pub lo: Vec<u64>,
    pub hi: Vec<u64>,
}

impl BBox {
    /// Construct from corners. `lo.len()` must equal `hi.len()`.
    pub fn new(lo: Vec<u64>, hi: Vec<u64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner ranks differ");
        BBox { lo, hi }
    }

    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    /// True if any dimension has zero (or negative) extent.
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l >= h)
    }

    /// Number of points inside the box (0 if empty).
    pub fn npoints(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Intersection with another box of the same rank. A disjoint pair
    /// yields the **canonical** empty box (`lo = hi = 0⃗`) rather than
    /// whatever `max(lo)/min(hi)` corners the inputs happened to
    /// produce: empty intersections of different inputs compare equal,
    /// hash equally (boxes key consumer caches), and convert to an
    /// in-bounds empty selection.
    pub fn intersect(&self, other: &BBox) -> BBox {
        assert_eq!(self.rank(), other.rank(), "box ranks differ");
        let lo: Vec<u64> = self.lo.iter().zip(&other.lo).map(|(a, b)| *a.max(b)).collect();
        let hi: Vec<u64> = self.hi.iter().zip(&other.hi).map(|(a, b)| *a.min(b)).collect();
        if lo.iter().zip(&hi).any(|(l, h)| l >= h) {
            return BBox { lo: vec![0; self.rank()], hi: vec![0; self.rank()] };
        }
        BBox { lo, hi }
    }

    /// True if the intersection with `other` is non-empty.
    pub fn intersects(&self, other: &BBox) -> bool {
        !self.intersect(other).is_empty()
    }

    /// True if `coord` lies inside the box.
    pub fn contains(&self, coord: &[u64]) -> bool {
        coord.len() == self.rank()
            && coord.iter().zip(self.lo.iter().zip(&self.hi)).all(|(c, (l, h))| c >= l && c < h)
    }

    /// The selection covering exactly this box. Any empty box — canonical
    /// or not — maps to the origin-anchored empty block, so the result
    /// validates against every dataspace of the same rank.
    pub fn to_selection(&self) -> Selection {
        if self.is_empty() {
            let zeros = vec![0u64; self.rank()];
            return Selection::block(&zeros, &zeros);
        }
        let sizes: Vec<u64> = self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).collect();
        Selection::block(&self.lo, &sizes)
    }
}

impl Encode for BBox {
    fn encode(&self, w: &mut Writer) {
        w.put_u64s(&self.lo);
        w.put_u64s(&self.hi);
    }
}

impl Decode for BBox {
    fn decode(r: &mut Reader<'_>) -> H5Result<Self> {
        let lo = r.get_u64s()?;
        let hi = r.get_u64s()?;
        if lo.len() != hi.len() {
            return Err(H5Error::Format("bbox corner ranks differ".into()));
        }
        Ok(BBox { lo, hi })
    }
}

/// Per-dimension hyperslab parameters (HDF5 `H5Sselect_hyperslab`):
/// `count` blocks of `block` consecutive indices, the blocks spaced
/// `stride` apart, starting at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabDim {
    pub start: u64,
    pub stride: u64,
    pub count: u64,
    pub block: u64,
}

impl SlabDim {
    /// Extent touched by this dimension: last selected index + 1.
    fn upper(&self) -> u64 {
        if self.count == 0 || self.block == 0 {
            return self.start;
        }
        self.start + (self.count - 1) * self.stride + self.block
    }

    /// Number of selected indices in this dimension.
    fn n(&self) -> u64 {
        self.count * self.block
    }
}

/// An element selection within a dataspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Every element.
    All,
    /// A regular hyperslab, one [`SlabDim`] per dimension.
    Hyperslab(Vec<SlabDim>),
    /// An explicit list of points, `coords` flattened as `n × rank`.
    ///
    /// Note: unlike HDF5, point selections are *canonicalized to row-major
    /// order* when packed, so that [`Selection::runs`] is always sorted.
    Points { rank: usize, coords: Vec<u64> },
    /// A union of selections (HDF5 `H5S_SELECT_OR`): an element is
    /// selected if any member selects it; overlaps count once. Packing
    /// order is row-major over the union, like every other variant.
    Union(Vec<Selection>),
}

impl Selection {
    /// Everything.
    pub fn all() -> Selection {
        Selection::All
    }

    /// A contiguous box: `size[i]` consecutive indices from `start[i]`.
    pub fn block(start: &[u64], size: &[u64]) -> Selection {
        assert_eq!(start.len(), size.len(), "start/size ranks differ");
        Selection::Hyperslab(
            start
                .iter()
                .zip(size)
                .map(|(&s, &n)| SlabDim { start: s, stride: n.max(1), count: 1, block: n })
                .collect(),
        )
    }

    /// A general strided hyperslab.
    pub fn strided(start: &[u64], stride: &[u64], count: &[u64], block: &[u64]) -> Selection {
        assert!(
            start.len() == stride.len() && start.len() == count.len() && start.len() == block.len(),
            "hyperslab parameter ranks differ"
        );
        Selection::Hyperslab(
            (0..start.len())
                .map(|i| SlabDim {
                    start: start[i],
                    stride: stride[i],
                    count: count[i],
                    block: block[i],
                })
                .collect(),
        )
    }

    /// The union of several selections (nested unions are flattened).
    pub fn union(members: Vec<Selection>) -> Selection {
        let mut flat = Vec::with_capacity(members.len());
        for m in members {
            match m {
                Selection::Union(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("one member")
        } else {
            Selection::Union(flat)
        }
    }

    /// A point selection from coordinate tuples.
    pub fn points(rank: usize, pts: &[&[u64]]) -> Selection {
        let mut coords = Vec::with_capacity(pts.len() * rank);
        for p in pts {
            assert_eq!(p.len(), rank, "point rank mismatch");
            coords.extend_from_slice(p);
        }
        Selection::Points { rank, coords }
    }

    /// Number of selected elements within `space`.
    pub fn npoints(&self, space: &Dataspace) -> u64 {
        match self {
            Selection::All => space.npoints(),
            Selection::Hyperslab(dims) => dims.iter().map(SlabDim::n).product(),
            Selection::Points { rank, coords } => {
                if *rank == 0 {
                    0
                } else {
                    (coords.len() / rank) as u64
                }
            }
            // Overlaps between members count once, so the union's size is
            // only known after run normalization.
            Selection::Union(_) => self.runs(space).iter().map(|r| r.len).sum(),
        }
    }

    /// Check the selection is well-formed and fits inside `space`.
    pub fn validate(&self, space: &Dataspace) -> H5Result<()> {
        let err = |m: String| Err(H5Error::ShapeMismatch(m));
        match self {
            Selection::All => Ok(()),
            Selection::Hyperslab(dims) => {
                if dims.len() != space.rank() {
                    return err(format!(
                        "hyperslab rank {} vs dataspace rank {}",
                        dims.len(),
                        space.rank()
                    ));
                }
                for (i, (d, &ext)) in dims.iter().zip(space.dims()).enumerate() {
                    if d.stride == 0 {
                        return err(format!("dim {i}: stride must be ≥ 1"));
                    }
                    if d.count > 1 && d.block > d.stride {
                        return err(format!("dim {i}: blocks overlap (block > stride)"));
                    }
                    if d.n() > 0 && d.upper() > ext {
                        return err(format!(
                            "dim {i}: selection extends to {} beyond extent {}",
                            d.upper(),
                            ext
                        ));
                    }
                }
                Ok(())
            }
            Selection::Union(members) => {
                for m in members {
                    m.validate(space)?;
                }
                Ok(())
            }
            Selection::Points { rank, coords } => {
                if *rank != space.rank() {
                    return err(format!("point rank {} vs dataspace rank {}", rank, space.rank()));
                }
                if *rank == 0 {
                    return if coords.is_empty() {
                        Ok(())
                    } else {
                        err("rank-0 point selection with coordinates".into())
                    };
                }
                for p in coords.chunks(*rank) {
                    if p.iter().zip(space.dims()).any(|(c, d)| c >= d) {
                        return err(format!("point {p:?} outside extent {:?}", space.dims()));
                    }
                }
                Ok(())
            }
        }
    }

    /// Bounding box of the selection within `space`.
    pub fn bbox(&self, space: &Dataspace) -> BBox {
        match self {
            Selection::All => BBox::new(vec![0; space.rank()], space.dims().to_vec()),
            Selection::Hyperslab(dims) => BBox::new(
                dims.iter().map(|d| d.start).collect(),
                dims.iter().map(SlabDim::upper).collect(),
            ),
            Selection::Union(members) => {
                let mut acc: Option<BBox> = None;
                for m in members {
                    let b = m.bbox(space);
                    if b.is_empty() {
                        continue;
                    }
                    acc = Some(match acc {
                        None => b,
                        Some(a) => BBox::new(
                            a.lo.iter().zip(&b.lo).map(|(x, y)| *x.min(y)).collect(),
                            a.hi.iter().zip(&b.hi).map(|(x, y)| *x.max(y)).collect(),
                        ),
                    });
                }
                acc.unwrap_or_else(|| BBox::new(vec![0; space.rank()], vec![0; space.rank()]))
            }
            Selection::Points { rank, coords } => {
                if coords.is_empty() {
                    return BBox::new(vec![0; *rank], vec![0; *rank]);
                }
                let mut lo = vec![u64::MAX; *rank];
                let mut hi = vec![0u64; *rank];
                for p in coords.chunks(*rank) {
                    for (i, &c) in p.iter().enumerate() {
                        lo[i] = lo[i].min(c);
                        hi[i] = hi[i].max(c + 1);
                    }
                }
                BBox::new(lo, hi)
            }
        }
    }

    /// Decompose into sorted, maximal contiguous runs of the row-major
    /// linearization of `space`.
    ///
    /// Packing order is defined to be run order, i.e. row-major order of
    /// the selected elements.
    pub fn runs(&self, space: &Dataspace) -> Vec<Run> {
        match self {
            Selection::All => {
                let n = space.npoints();
                if n == 0 {
                    vec![]
                } else {
                    vec![Run { offset: 0, len: n }]
                }
            }
            Selection::Hyperslab(dims) => hyperslab_runs(dims, space),
            Selection::Union(members) => {
                let mut all: Vec<Run> = members.iter().flat_map(|m| m.runs(space)).collect();
                all.sort_unstable_by_key(|r| r.offset);
                // Merge overlapping and adjacent runs.
                let mut out: Vec<Run> = Vec::with_capacity(all.len());
                for r in all {
                    match out.last_mut() {
                        Some(last) if r.offset <= last.offset + last.len => {
                            let end = (last.offset + last.len).max(r.offset + r.len);
                            last.len = end - last.offset;
                        }
                        _ => out.push(r),
                    }
                }
                out
            }
            Selection::Points { rank, coords } => {
                if *rank == 0 {
                    return vec![];
                }
                let mut offs: Vec<u64> = coords.chunks(*rank).map(|p| space.linearize(p)).collect();
                offs.sort_unstable();
                offs.dedup();
                let mut runs: Vec<Run> = Vec::new();
                for o in offs {
                    push_run(&mut runs, o, 1);
                }
                runs
            }
        }
    }
}

impl Encode for Selection {
    fn encode(&self, w: &mut Writer) {
        match self {
            Selection::All => w.put_u8(0),
            Selection::Hyperslab(dims) => {
                w.put_u8(1);
                w.put_u64(dims.len() as u64);
                for d in dims {
                    w.put_u64(d.start);
                    w.put_u64(d.stride);
                    w.put_u64(d.count);
                    w.put_u64(d.block);
                }
            }
            Selection::Points { rank, coords } => {
                w.put_u8(2);
                w.put_u64(*rank as u64);
                w.put_u64s(coords);
            }
            Selection::Union(members) => {
                w.put_u8(3);
                w.put_u64(members.len() as u64);
                for m in members {
                    m.encode(w);
                }
            }
        }
    }
}

impl Decode for Selection {
    fn decode(r: &mut Reader<'_>) -> H5Result<Self> {
        Ok(match r.get_u8()? {
            0 => Selection::All,
            1 => {
                let n = r.get_count(32)?; // 4 u64s per slab dim
                let mut dims = Vec::with_capacity(n);
                for _ in 0..n {
                    dims.push(SlabDim {
                        start: r.get_u64()?,
                        stride: r.get_u64()?,
                        count: r.get_u64()?,
                        block: r.get_u64()?,
                    });
                }
                Selection::Hyperslab(dims)
            }
            2 => {
                let rank = r.get_u64()? as usize;
                let coords = r.get_u64s()?;
                if rank > 0 && coords.len() % rank != 0 {
                    return Err(H5Error::Format("point coords not a multiple of rank".into()));
                }
                Selection::Points { rank, coords }
            }
            3 => {
                let n = r.get_count(1)?; // a member is at least its tag byte
                if n > 1 << 20 {
                    return Err(H5Error::Format("union too large".into()));
                }
                let members = (0..n).map(|_| Selection::decode(r)).collect::<H5Result<Vec<_>>>()?;
                Selection::Union(members)
            }
            t => return Err(H5Error::Format(format!("unknown selection tag {t}"))),
        })
    }
}

fn push_run(runs: &mut Vec<Run>, offset: u64, len: u64) {
    if len == 0 {
        return;
    }
    if let Some(last) = runs.last_mut() {
        if last.offset + last.len == offset {
            last.len += len;
            return;
        }
    }
    runs.push(Run { offset, len });
}

/// Enumerate the runs of a hyperslab: odometer over the selected indices of
/// all outer dimensions; the innermost dimension contributes `count`
/// segments of `block` consecutive elements; adjacent segments merge.
fn hyperslab_runs(dims: &[SlabDim], space: &Dataspace) -> Vec<Run> {
    if dims.is_empty() {
        // Rank-0 hyperslab over a scalar space: one element.
        return vec![Run { offset: 0, len: 1 }];
    }
    if dims.iter().any(|d| d.n() == 0) || space.npoints() == 0 {
        return vec![];
    }
    let strides = space.strides();
    let inner = dims[dims.len() - 1];
    let outer = &dims[..dims.len() - 1];

    // Odometer over (k, b) pairs of each outer dimension.
    let mut counters: Vec<(u64, u64)> = vec![(0, 0); outer.len()];
    let mut runs = Vec::new();
    loop {
        // Base linear offset of the current row.
        let base: u64 = counters
            .iter()
            .zip(outer)
            .zip(&strides)
            .map(|(((k, b), d), s)| (d.start + k * d.stride + b) * s)
            .sum();
        // Inner-dimension segments.
        for k in 0..inner.count {
            let off = base + inner.start + k * inner.stride;
            push_run(&mut runs, off, inner.block);
        }
        // Advance the odometer (rightmost outer dimension fastest).
        let mut i = outer.len();
        loop {
            if i == 0 {
                return runs;
            }
            i -= 1;
            let d = outer[i];
            let (ref mut k, ref mut b) = counters[i];
            *b += 1;
            if *b == d.block {
                *b = 0;
                *k += 1;
                if *k == d.count {
                    *k = 0;
                    continue; // carry into the next-slower dimension
                }
            }
            break;
        }
    }
}

/// Intersect two sorted run lists, tracking packed offsets on both sides.
///
/// `a_off`/`b_off` of each output run give the element offset of the
/// overlapping piece within A's and B's packed buffers respectively.
pub fn overlap_runs(a: &[Run], b: &[Run]) -> Vec<OverlapRun> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    let (mut a_cum, mut b_cum) = (0u64, 0u64);
    while i < a.len() && j < b.len() {
        let (ra, rb) = (a[i], b[j]);
        let lo = ra.offset.max(rb.offset);
        let hi = (ra.offset + ra.len).min(rb.offset + rb.len);
        if lo < hi {
            out.push(OverlapRun {
                offset: lo,
                len: hi - lo,
                a_off: a_cum + (lo - ra.offset),
                b_off: b_cum + (lo - rb.offset),
            });
        }
        // Advance whichever run ends first.
        if ra.offset + ra.len <= rb.offset + rb.len {
            a_cum += ra.len;
            i += 1;
        } else {
            b_cum += rb.len;
            j += 1;
        }
    }
    out
}

/// Pack the selected elements of a full row-major buffer into a contiguous
/// buffer, in run (row-major) order.
///
/// `src` must hold exactly `space.npoints() * elem_size` bytes.
pub fn pack(sel: &Selection, space: &Dataspace, elem_size: usize, src: &[u8]) -> Vec<u8> {
    assert_eq!(src.len() as u64, space.npoints() * elem_size as u64, "source buffer size");
    let runs = sel.runs(space);
    let total: u64 = runs.iter().map(|r| r.len).sum();
    let mut out = Vec::with_capacity((total as usize) * elem_size);
    for r in &runs {
        let s = (r.offset as usize) * elem_size;
        let e = s + (r.len as usize) * elem_size;
        out.extend_from_slice(&src[s..e]);
    }
    out
}

/// Scatter a packed buffer (in run order) back into a full row-major
/// buffer. Inverse of [`pack`].
pub fn unpack(sel: &Selection, space: &Dataspace, elem_size: usize, packed: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len() as u64, space.npoints() * elem_size as u64, "destination buffer size");
    let runs = sel.runs(space);
    let total: u64 = runs.iter().map(|r| r.len).sum();
    assert_eq!(packed.len() as u64, total * elem_size as u64, "packed buffer size");
    let mut p = 0usize;
    for r in &runs {
        let n = (r.len as usize) * elem_size;
        let d = (r.offset as usize) * elem_size;
        dst[d..d + n].copy_from_slice(&packed[p..p + n]);
        p += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(dims: &[u64]) -> Dataspace {
        Dataspace::simple(dims)
    }

    #[test]
    fn all_is_one_run() {
        let sp = space(&[4, 5]);
        assert_eq!(Selection::all().runs(&sp), vec![Run { offset: 0, len: 20 }]);
        assert_eq!(Selection::all().npoints(&sp), 20);
    }

    #[test]
    fn block_runs_2d() {
        // 4x6 space, box at (1,2) size (2,3): rows 1,2 cols 2..5.
        let sp = space(&[4, 6]);
        let sel = Selection::block(&[1, 2], &[2, 3]);
        assert_eq!(sel.runs(&sp), vec![Run { offset: 8, len: 3 }, Run { offset: 14, len: 3 }]);
        assert_eq!(sel.npoints(&sp), 6);
    }

    #[test]
    fn full_rows_merge_into_one_run() {
        // Box spanning entire trailing dims collapses to a single run.
        let sp = space(&[10, 4, 5]);
        let sel = Selection::block(&[2, 0, 0], &[3, 4, 5]);
        assert_eq!(sel.runs(&sp), vec![Run { offset: 40, len: 60 }]);
    }

    #[test]
    fn strided_1d_runs() {
        // start 1, stride 3, count 4, block 2 → {1,2, 4,5, 7,8, 10,11}
        let sp = space(&[12]);
        let sel = Selection::strided(&[1], &[3], &[4], &[2]);
        assert_eq!(
            sel.runs(&sp),
            vec![
                Run { offset: 1, len: 2 },
                Run { offset: 4, len: 2 },
                Run { offset: 7, len: 2 },
                Run { offset: 10, len: 2 }
            ]
        );
        assert_eq!(sel.npoints(&sp), 8);
    }

    #[test]
    fn stride_equal_block_merges() {
        // stride == block → contiguous.
        let sp = space(&[12]);
        let sel = Selection::strided(&[2], &[2], &[4], &[2]);
        assert_eq!(sel.runs(&sp), vec![Run { offset: 2, len: 8 }]);
    }

    #[test]
    fn strided_outer_dimension() {
        // 6x4: rows {0, 2, 4}, all columns.
        let sp = space(&[6, 4]);
        let sel = Selection::strided(&[0, 0], &[2, 1], &[3, 4], &[1, 1]);
        assert_eq!(
            sel.runs(&sp),
            vec![Run { offset: 0, len: 4 }, Run { offset: 8, len: 4 }, Run { offset: 16, len: 4 }]
        );
    }

    #[test]
    fn outer_block_gt_one() {
        // 8x2: row pairs {1,2} and {5,6}, all columns → two runs of 4.
        let sp = space(&[8, 2]);
        let sel = Selection::strided(&[1, 0], &[4, 1], &[2, 1], &[2, 2]);
        assert_eq!(sel.runs(&sp), vec![Run { offset: 2, len: 4 }, Run { offset: 10, len: 4 }]);
    }

    #[test]
    fn points_runs_sorted_and_merged() {
        let sp = space(&[3, 4]);
        // (2,1)=9, (0,0)=0, (0,1)=1, (2,2)=10 → runs [0,2) and [9,11)
        let sel = Selection::points(2, &[&[2, 1], &[0, 0], &[0, 1], &[2, 2]]);
        assert_eq!(sel.runs(&sp), vec![Run { offset: 0, len: 2 }, Run { offset: 9, len: 2 }]);
    }

    #[test]
    fn scalar_space_all() {
        let sp = Dataspace::scalar();
        assert_eq!(Selection::all().runs(&sp), vec![Run { offset: 0, len: 1 }]);
    }

    #[test]
    fn bboxes() {
        let sp = space(&[6, 8]);
        assert_eq!(Selection::all().bbox(&sp), BBox::new(vec![0, 0], vec![6, 8]));
        let sel = Selection::block(&[1, 2], &[2, 3]);
        assert_eq!(sel.bbox(&sp), BBox::new(vec![1, 2], vec![3, 5]));
        let strided = Selection::strided(&[1], &[3], &[4], &[2]);
        assert_eq!(strided.bbox(&space(&[12])), BBox::new(vec![1], vec![12]));
        let pts = Selection::points(2, &[&[5, 1], &[2, 7]]);
        assert_eq!(pts.bbox(&sp), BBox::new(vec![2, 1], vec![6, 8]));
    }

    #[test]
    fn bbox_ops() {
        let a = BBox::new(vec![0, 0], vec![4, 4]);
        let b = BBox::new(vec![2, 3], vec![6, 8]);
        let i = a.intersect(&b);
        assert_eq!(i, BBox::new(vec![2, 3], vec![4, 4]));
        assert_eq!(i.npoints(), 2);
        assert!(a.intersects(&b));
        let c = BBox::new(vec![4, 0], vec![5, 4]);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersect(&c).npoints(), 0);
        assert!(a.contains(&[3, 3]));
        assert!(!a.contains(&[4, 0]));
    }

    #[test]
    fn bbox_to_selection_roundtrip() {
        let sp = space(&[10, 10]);
        let b = BBox::new(vec![2, 3], vec![5, 9]);
        let sel = b.to_selection();
        assert_eq!(sel.bbox(&sp), b);
        assert_eq!(sel.npoints(&sp), b.npoints());
    }

    #[test]
    fn empty_intersection_is_canonical() {
        // Disjoint pairs with very different corners must all normalize
        // to the same empty box (these boxes key consumer caches).
        let a = BBox::new(vec![0, 0], vec![4, 4]);
        let far = BBox::new(vec![100, 200], vec![300, 400]);
        let adjacent = BBox::new(vec![4, 0], vec![8, 4]);
        let canon = BBox::new(vec![0, 0], vec![0, 0]);
        assert_eq!(a.intersect(&far), canon);
        assert_eq!(a.intersect(&adjacent), canon);
        assert_eq!(a.intersect(&far), a.intersect(&adjacent));
        // One empty axis empties the whole intersection, even where the
        // other axis overlaps.
        let mixed = BBox::new(vec![1, 9], vec![3, 12]);
        assert_eq!(a.intersect(&mixed), canon);
        // Non-empty intersections are untouched by the normalization.
        let b = BBox::new(vec![2, 2], vec![6, 6]);
        assert_eq!(a.intersect(&b), BBox::new(vec![2, 2], vec![4, 4]));
    }

    #[test]
    fn empty_bbox_to_selection_validates_everywhere() {
        // A raw (non-canonical) empty box — e.g. built directly from a
        // degenerate query — must still convert to an in-bounds empty
        // selection, not one anchored past the dataspace extent.
        let sp = space(&[4, 4]);
        for empty in [
            BBox::new(vec![0, 0], vec![0, 0]),
            BBox::new(vec![9, 9], vec![9, 9]),
            BBox::new(vec![7, 1], vec![2, 3]),
        ] {
            assert!(empty.is_empty());
            let sel = empty.to_selection();
            assert!(sel.validate(&sp).is_ok(), "{empty:?}");
            assert_eq!(sel.npoints(&sp), 0);
            assert!(sel.runs(&sp).is_empty());
        }
    }

    #[test]
    fn validation() {
        let sp = space(&[4, 4]);
        assert!(Selection::block(&[0, 0], &[4, 4]).validate(&sp).is_ok());
        assert!(Selection::block(&[2, 2], &[3, 1]).validate(&sp).is_err());
        assert!(Selection::block(&[0], &[4]).validate(&sp).is_err()); // rank
        assert!(Selection::points(2, &[&[3, 3]]).validate(&sp).is_ok());
        assert!(Selection::points(2, &[&[4, 0]]).validate(&sp).is_err());
        // Overlapping blocks rejected.
        assert!(Selection::strided(&[0], &[2], &[2], &[3]).validate(&space(&[10])).is_err());
        // Zero stride rejected.
        assert!(Selection::strided(&[0], &[0], &[2], &[1]).validate(&space(&[10])).is_err());
    }

    #[test]
    fn overlap_two_boxes() {
        let sp = space(&[4, 6]);
        // A: rows 0-1 all cols; B: cols 2-4 all rows.
        let a = Selection::block(&[0, 0], &[2, 6]).runs(&sp);
        let b = Selection::block(&[0, 2], &[4, 3]).runs(&sp);
        let ov = overlap_runs(&a, &b);
        // Intersection: rows 0-1, cols 2-4 → linear [2,5) and [8,11).
        assert_eq!(ov.len(), 2);
        assert_eq!(ov[0], OverlapRun { offset: 2, len: 3, a_off: 2, b_off: 0 });
        assert_eq!(ov[1], OverlapRun { offset: 8, len: 3, a_off: 8, b_off: 3 });
    }

    #[test]
    fn overlap_disjoint_is_empty() {
        let sp = space(&[4, 4]);
        let a = Selection::block(&[0, 0], &[2, 4]).runs(&sp);
        let b = Selection::block(&[2, 0], &[2, 4]).runs(&sp);
        assert!(overlap_runs(&a, &b).is_empty());
    }

    #[test]
    fn overlap_total_elements_match_bbox_math() {
        let sp = space(&[8, 8]);
        let a = Selection::block(&[1, 1], &[5, 5]);
        let b = Selection::block(&[3, 3], &[4, 4]);
        let ov = overlap_runs(&a.runs(&sp), &b.runs(&sp));
        let total: u64 = ov.iter().map(|o| o.len).sum();
        assert_eq!(total, a.bbox(&sp).intersect(&b.bbox(&sp)).npoints());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let sp = space(&[4, 5]);
        let src: Vec<u8> = (0..20u8).collect();
        let sel = Selection::block(&[1, 1], &[2, 3]);
        let packed = pack(&sel, &sp, 1, &src);
        assert_eq!(packed, vec![6, 7, 8, 11, 12, 13]);
        let mut dst = vec![0u8; 20];
        unpack(&sel, &sp, 1, &packed, &mut dst);
        for (i, &v) in dst.iter().enumerate() {
            if packed.contains(&(i as u8)) {
                assert_eq!(v, i as u8);
            } else {
                assert_eq!(v, 0);
            }
        }
    }

    #[test]
    fn pack_with_multibyte_elements() {
        let sp = space(&[2, 3]);
        let src: Vec<u64> = vec![10, 11, 12, 20, 21, 22];
        let bytes = simmpi_like_bytes(&src);
        let sel = Selection::block(&[0, 1], &[2, 2]);
        let packed = pack(&sel, &sp, 8, &bytes);
        let vals: Vec<u64> =
            packed.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(vals, vec![11, 12, 21, 22]);
    }

    fn simmpi_like_bytes(v: &[u64]) -> Vec<u8> {
        v.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn selection_codec_roundtrip() {
        let sels = vec![
            Selection::all(),
            Selection::block(&[1, 2], &[3, 4]),
            Selection::strided(&[0, 1], &[2, 3], &[4, 5], &[1, 2]),
            Selection::points(3, &[&[1, 2, 3], &[4, 5, 6]]),
        ];
        for s in sels {
            assert_eq!(Selection::from_bytes(&s.to_bytes()).unwrap(), s);
        }
    }

    #[test]
    fn empty_selection_edge_cases() {
        let sp = space(&[4, 4]);
        let empty = Selection::block(&[0, 0], &[0, 4]);
        assert_eq!(empty.npoints(&sp), 0);
        assert!(empty.runs(&sp).is_empty());
        let nopts = Selection::Points { rank: 2, coords: vec![] };
        assert_eq!(nopts.npoints(&sp), 0);
        assert!(nopts.runs(&sp).is_empty());
        assert!(nopts.bbox(&sp).is_empty());
    }
}

#[cfg(test)]
mod union_tests {
    use super::*;

    fn space(dims: &[u64]) -> Dataspace {
        Dataspace::simple(dims)
    }

    #[test]
    fn union_merges_overlapping_members() {
        let sp = space(&[16]);
        let u = Selection::union(vec![
            Selection::block(&[0], &[6]),
            Selection::block(&[4], &[4]), // overlaps [4,6)
            Selection::block(&[10], &[2]),
        ]);
        assert_eq!(u.runs(&sp), vec![Run { offset: 0, len: 8 }, Run { offset: 10, len: 2 }]);
        // Overlap counted once.
        assert_eq!(u.npoints(&sp), 10);
    }

    #[test]
    fn union_of_one_collapses() {
        let s = Selection::union(vec![Selection::block(&[1], &[2])]);
        assert!(matches!(s, Selection::Hyperslab(_)));
    }

    #[test]
    fn nested_unions_flatten() {
        let inner =
            Selection::union(vec![Selection::block(&[0], &[1]), Selection::block(&[2], &[1])]);
        let outer = Selection::union(vec![inner, Selection::block(&[4], &[1])]);
        match &outer {
            Selection::Union(m) => assert_eq!(m.len(), 3),
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn union_bbox_covers_members() {
        let sp = space(&[8, 8]);
        let u = Selection::union(vec![
            Selection::block(&[0, 0], &[2, 2]),
            Selection::block(&[6, 5], &[2, 3]),
        ]);
        assert_eq!(u.bbox(&sp), BBox::new(vec![0, 0], vec![8, 8]));
    }

    #[test]
    fn union_validate_checks_members() {
        let sp = space(&[4]);
        let good =
            Selection::union(vec![Selection::block(&[0], &[2]), Selection::block(&[2], &[2])]);
        assert!(good.validate(&sp).is_ok());
        let bad = Selection::union(vec![
            Selection::block(&[0], &[2]),
            Selection::block(&[3], &[2]), // out of bounds
        ]);
        assert!(bad.validate(&sp).is_err());
    }

    #[test]
    fn union_pack_and_overlap() {
        let sp = space(&[3, 4]);
        let src: Vec<u8> = (0..12u8).collect();
        // Rows 0 and 2.
        let u = Selection::union(vec![
            Selection::block(&[0, 0], &[1, 4]),
            Selection::block(&[2, 0], &[1, 4]),
        ]);
        let packed = pack(&u, &sp, 1, &src);
        assert_eq!(packed, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        // Overlap with a column.
        let col = Selection::block(&[0, 1], &[3, 1]);
        let ov = overlap_runs(&u.runs(&sp), &col.runs(&sp));
        let total: u64 = ov.iter().map(|o| o.len).sum();
        assert_eq!(total, 2); // rows 0 and 2 of the column
    }

    #[test]
    fn union_codec_roundtrip() {
        let u = Selection::union(vec![
            Selection::block(&[0, 0], &[1, 4]),
            Selection::points(2, &[&[2, 2]]),
        ]);
        assert_eq!(Selection::from_bytes(&u.to_bytes()).unwrap(), u);
    }

    #[test]
    fn empty_union() {
        let sp = space(&[4]);
        let u = Selection::union(vec![]);
        assert_eq!(u.npoints(&sp), 0);
        assert!(u.runs(&sp).is_empty());
        assert!(u.validate(&sp).is_ok());
    }
}
