//! Datatypes: the HDF5 type system subset the paper's workloads use,
//! plus compounds and fixed-size arrays/strings for generality.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::{H5Error, H5Result};

/// An element datatype.
///
/// The synthetic benchmarks in the paper use `UInt64` scalars (the grid)
/// and a compound of three `Float32`s (the particles); the cosmology use
/// case adds `Float64` fields. Compounds and arrays cover NetCDF-style
/// records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datatype {
    Int8,
    Int16,
    Int32,
    Int64,
    UInt8,
    UInt16,
    UInt32,
    UInt64,
    Float32,
    Float64,
    /// Fixed-length byte string (HDF5 `H5T_STRING` with fixed storage).
    FixedString(usize),
    /// Record type with named, ordered fields stored contiguously.
    Compound(Vec<CompoundField>),
    /// Fixed-size inner array, e.g. a 3-vector per element.
    Array(Box<Datatype>, Vec<u64>),
}

/// One field of a [`Datatype::Compound`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompoundField {
    pub name: String,
    pub dtype: Datatype,
}

impl Datatype {
    /// A compound of `n` same-typed coordinates, e.g. a 3-d particle:
    /// `Datatype::vector(Datatype::Float32, 3)` — 12 bytes per particle,
    /// all coordinates colocated (the Bredala comparison in the paper
    /// hinges on this colocation surviving redistribution).
    pub fn vector(elem: Datatype, n: u64) -> Datatype {
        Datatype::Array(Box::new(elem), vec![n])
    }

    /// Element size in bytes. Compounds are packed (no padding).
    pub fn size(&self) -> usize {
        match self {
            Datatype::Int8 | Datatype::UInt8 => 1,
            Datatype::Int16 | Datatype::UInt16 => 2,
            Datatype::Int32 | Datatype::UInt32 | Datatype::Float32 => 4,
            Datatype::Int64 | Datatype::UInt64 | Datatype::Float64 => 8,
            Datatype::FixedString(n) => *n,
            Datatype::Compound(fields) => fields.iter().map(|f| f.dtype.size()).sum(),
            Datatype::Array(inner, dims) => inner.size() * dims.iter().product::<u64>() as usize,
        }
    }

    /// Byte offset of a compound field, if this is a compound containing it.
    pub fn field_offset(&self, name: &str) -> Option<usize> {
        if let Datatype::Compound(fields) = self {
            let mut off = 0;
            for f in fields {
                if f.name == name {
                    return Some(off);
                }
                off += f.dtype.size();
            }
        }
        None
    }

    /// Short class name for diagnostics.
    pub fn class_name(&self) -> &'static str {
        match self {
            Datatype::Int8 | Datatype::Int16 | Datatype::Int32 | Datatype::Int64 => "int",
            Datatype::UInt8 | Datatype::UInt16 | Datatype::UInt32 | Datatype::UInt64 => "uint",
            Datatype::Float32 | Datatype::Float64 => "float",
            Datatype::FixedString(_) => "string",
            Datatype::Compound(_) => "compound",
            Datatype::Array(..) => "array",
        }
    }
}

mod sealed {
    pub trait Sealed {}
}

/// Rust element types with a fixed [`Datatype`] mapping, used by the typed
/// read/write convenience methods on [`crate::Dataset`].
///
/// # Safety contract (upheld by the sealed impls)
/// Implementors are plain-old-data: no padding, no invalid bit patterns.
pub trait H5Type: sealed::Sealed + Copy + Send + Sync + 'static {
    /// The data-model type corresponding to `Self`.
    const DTYPE: Datatype;
}

macro_rules! impl_h5type {
    ($($t:ty => $d:expr),*) => {$(
        impl sealed::Sealed for $t {}
        impl H5Type for $t { const DTYPE: Datatype = $d; }
    )*};
}

impl_h5type!(
    i8 => Datatype::Int8, i16 => Datatype::Int16, i32 => Datatype::Int32, i64 => Datatype::Int64,
    u8 => Datatype::UInt8, u16 => Datatype::UInt16, u32 => Datatype::UInt32, u64 => Datatype::UInt64,
    f32 => Datatype::Float32, f64 => Datatype::Float64
);

/// View a typed slice as raw bytes (zero-copy).
pub fn elems_as_bytes<T: H5Type>(slice: &[T]) -> &[u8] {
    // SAFETY: T is H5Type (sealed POD), the slice view covers the same
    // memory exactly.
    unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), std::mem::size_of_val(slice)) }
}

/// Copy raw bytes into a typed vector.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of the element size.
pub fn elems_from_bytes<T: H5Type>(bytes: &[u8]) -> Vec<T> {
    let es = std::mem::size_of::<T>();
    assert!(
        bytes.len().is_multiple_of(es),
        "byte length {} not a multiple of element size {es}",
        bytes.len()
    );
    let n = bytes.len() / es;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: T is POD; we copy exactly n elements' worth of bytes.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    out
}

const T_I8: u8 = 0;
const T_I16: u8 = 1;
const T_I32: u8 = 2;
const T_I64: u8 = 3;
const T_U8: u8 = 4;
const T_U16: u8 = 5;
const T_U32: u8 = 6;
const T_U64: u8 = 7;
const T_F32: u8 = 8;
const T_F64: u8 = 9;
const T_STR: u8 = 10;
const T_COMPOUND: u8 = 11;
const T_ARRAY: u8 = 12;

impl Encode for Datatype {
    fn encode(&self, w: &mut Writer) {
        match self {
            Datatype::Int8 => w.put_u8(T_I8),
            Datatype::Int16 => w.put_u8(T_I16),
            Datatype::Int32 => w.put_u8(T_I32),
            Datatype::Int64 => w.put_u8(T_I64),
            Datatype::UInt8 => w.put_u8(T_U8),
            Datatype::UInt16 => w.put_u8(T_U16),
            Datatype::UInt32 => w.put_u8(T_U32),
            Datatype::UInt64 => w.put_u8(T_U64),
            Datatype::Float32 => w.put_u8(T_F32),
            Datatype::Float64 => w.put_u8(T_F64),
            Datatype::FixedString(n) => {
                w.put_u8(T_STR);
                w.put_u64(*n as u64);
            }
            Datatype::Compound(fields) => {
                w.put_u8(T_COMPOUND);
                w.put_u64(fields.len() as u64);
                for f in fields {
                    w.put_str(&f.name);
                    f.dtype.encode(w);
                }
            }
            Datatype::Array(inner, dims) => {
                w.put_u8(T_ARRAY);
                inner.encode(w);
                w.put_u64s(dims);
            }
        }
    }
}

impl Decode for Datatype {
    fn decode(r: &mut Reader<'_>) -> H5Result<Self> {
        Ok(match r.get_u8()? {
            T_I8 => Datatype::Int8,
            T_I16 => Datatype::Int16,
            T_I32 => Datatype::Int32,
            T_I64 => Datatype::Int64,
            T_U8 => Datatype::UInt8,
            T_U16 => Datatype::UInt16,
            T_U32 => Datatype::UInt32,
            T_U64 => Datatype::UInt64,
            T_F32 => Datatype::Float32,
            T_F64 => Datatype::Float64,
            T_STR => Datatype::FixedString(r.get_u64()? as usize),
            T_COMPOUND => {
                let n = r.get_count(9)?; // name length prefix + dtype tag
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.get_str()?;
                    let dtype = Datatype::decode(r)?;
                    fields.push(CompoundField { name, dtype });
                }
                Datatype::Compound(fields)
            }
            T_ARRAY => {
                let inner = Datatype::decode(r)?;
                let dims = r.get_u64s()?;
                Datatype::Array(Box::new(inner), dims)
            }
            t => return Err(H5Error::Format(format!("unknown datatype tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(Datatype::UInt64.size(), 8);
        assert_eq!(Datatype::Float32.size(), 4);
        assert_eq!(Datatype::Int8.size(), 1);
        assert_eq!(Datatype::FixedString(17).size(), 17);
    }

    #[test]
    fn particle_type_is_12_bytes() {
        // The paper's particle: a 3-d vector of 32-bit floats.
        let p = Datatype::vector(Datatype::Float32, 3);
        assert_eq!(p.size(), 12);
    }

    #[test]
    fn compound_layout() {
        let c = Datatype::Compound(vec![
            CompoundField { name: "id".into(), dtype: Datatype::UInt64 },
            CompoundField { name: "pos".into(), dtype: Datatype::vector(Datatype::Float32, 3) },
            CompoundField { name: "mass".into(), dtype: Datatype::Float64 },
        ]);
        assert_eq!(c.size(), 8 + 12 + 8);
        assert_eq!(c.field_offset("id"), Some(0));
        assert_eq!(c.field_offset("pos"), Some(8));
        assert_eq!(c.field_offset("mass"), Some(20));
        assert_eq!(c.field_offset("missing"), None);
    }

    #[test]
    fn codec_roundtrip_all_variants() {
        let types = vec![
            Datatype::Int8,
            Datatype::UInt32,
            Datatype::Float64,
            Datatype::FixedString(9),
            Datatype::vector(Datatype::Float32, 3),
            Datatype::Compound(vec![
                CompoundField { name: "a".into(), dtype: Datatype::Int16 },
                CompoundField {
                    name: "nested".into(),
                    dtype: Datatype::Compound(vec![CompoundField {
                        name: "b".into(),
                        dtype: Datatype::Float32,
                    }]),
                },
            ]),
        ];
        for t in types {
            let b = t.to_bytes();
            assert_eq!(Datatype::from_bytes(&b).unwrap(), t);
        }
    }

    #[test]
    fn class_names() {
        assert_eq!(Datatype::UInt8.class_name(), "uint");
        assert_eq!(Datatype::vector(Datatype::Float32, 3).class_name(), "array");
    }
}
