//! `nh5ls` — list the contents of a `.nh5` file (the `h5ls`/`h5dump -H`
//! analogue for the native format).
//!
//! ```text
//! cargo run -p minih5 --bin nh5ls -- file.nh5 [file2.nh5 …]
//! ```

use minih5::{Dataset, Datatype, Group, H5File, ObjKind, H5};

fn dtype_name(t: &Datatype) -> String {
    match t {
        Datatype::Int8 => "i8".into(),
        Datatype::Int16 => "i16".into(),
        Datatype::Int32 => "i32".into(),
        Datatype::Int64 => "i64".into(),
        Datatype::UInt8 => "u8".into(),
        Datatype::UInt16 => "u16".into(),
        Datatype::UInt32 => "u32".into(),
        Datatype::UInt64 => "u64".into(),
        Datatype::Float32 => "f32".into(),
        Datatype::Float64 => "f64".into(),
        Datatype::FixedString(n) => format!("str[{n}]"),
        Datatype::Compound(fields) => {
            let inner: Vec<String> =
                fields.iter().map(|f| format!("{}: {}", f.name, dtype_name(&f.dtype))).collect();
            format!("{{ {} }}", inner.join(", "))
        }
        Datatype::Array(inner, dims) => format!("{}{dims:?}", dtype_name(inner)),
    }
}

fn print_dataset(d: &Dataset, name: &str, indent: usize) {
    let pad = "  ".repeat(indent);
    match d.meta() {
        Ok((dtype, space)) => {
            let layout = match d.chunk() {
                Ok(Some(c)) => format!(", chunked {c:?}"),
                _ => String::new(),
            };
            let max = match space.maxdims() {
                Some(m) => {
                    let pretty: Vec<String> = m
                        .iter()
                        .map(|&v| {
                            if v == minih5::space::UNLIMITED {
                                "∞".to_string()
                            } else {
                                v.to_string()
                            }
                        })
                        .collect();
                    format!(" (max [{}])", pretty.join(", "))
                }
                None => String::new(),
            };
            println!(
                "{pad}{name}  dataset {} {:?}{max}{layout}  [{} elements, {} bytes]",
                dtype_name(&dtype),
                space.dims(),
                space.npoints(),
                space.npoints() * dtype.size() as u64,
            );
        }
        Err(e) => println!("{pad}{name}  dataset <error: {e}>"),
    }
}

fn walk_group(g: &Group, indent: usize) {
    let children = match g.list() {
        Ok(c) => c,
        Err(e) => {
            println!("{}<error listing: {e}>", "  ".repeat(indent));
            return;
        }
    };
    for (name, kind) in children {
        match kind {
            ObjKind::Group | ObjKind::File => {
                println!("{}{name}/", "  ".repeat(indent));
                if let Ok(sub) = g.open_group(&name) {
                    walk_group(&sub, indent + 1);
                }
            }
            ObjKind::Dataset => {
                if let Ok(d) = g.open_dataset(&name) {
                    print_dataset(&d, &name, indent);
                }
            }
        }
    }
}

fn walk_file(f: &H5File) {
    let children = match f.list() {
        Ok(c) => c,
        Err(e) => {
            println!("  <error listing: {e}>");
            return;
        }
    };
    for (name, kind) in children {
        match kind {
            ObjKind::Group | ObjKind::File => {
                println!("  {name}/");
                if let Ok(sub) = f.open_group(&name) {
                    walk_group(&sub, 2);
                }
            }
            ObjKind::Dataset => {
                if let Ok(d) = f.open_dataset(&name) {
                    print_dataset(&d, &name, 1);
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: nh5ls <file.nh5> [more files…]");
        std::process::exit(2);
    }
    let h5 = H5::native();
    let mut status = 0;
    for path in &args {
        match h5.open_file(path) {
            Ok(f) => {
                println!("{path}:");
                walk_file(&f);
                let _ = f.close();
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                status = 1;
            }
        }
    }
    std::process::exit(status);
}
