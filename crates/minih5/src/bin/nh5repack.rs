//! `nh5repack` — rewrite a `.nh5` file, optionally changing dataset
//! layouts (the `h5repack` analogue).
//!
//! ```text
//! cargo run -p minih5 --bin nh5repack -- <in.nh5> <out.nh5> [--chunk N,..]
//! ```
//!
//! Without `--chunk`, datasets are copied with contiguous layout (useful
//! to compact a grown, chunk-fragmented file). With `--chunk d0,d1,…`,
//! every dataset whose rank matches gets that chunk shape.

use minih5::{Dataset, Group, H5File, ObjKind, Selection, H5};

fn copy_dataset(
    src: &Dataset,
    dst_parent_create: &dyn Fn(
        &str,
        minih5::Datatype,
        minih5::Dataspace,
    ) -> minih5::H5Result<Dataset>,
    name: &str,
) {
    let (dtype, space) = src.meta().expect("source dataset meta");
    let dst = dst_parent_create(name, dtype, space).expect("create destination dataset");
    let data = src.read_bytes(&Selection::all()).expect("read source");
    dst.write_bytes(&Selection::all(), data, minih5::Ownership::Deep).expect("write destination");
}

fn walk(src: &Group, dst: &Group, chunk: &Option<Vec<u64>>) {
    for (name, kind) in src.list().expect("list source group") {
        match kind {
            ObjKind::Group | ObjKind::File => {
                let s = src.open_group(&name).expect("open source group");
                let d = dst.create_group(&name).expect("create destination group");
                walk(&s, &d, chunk);
            }
            ObjKind::Dataset => {
                let s = src.open_dataset(&name).expect("open source dataset");
                let make = |n: &str, t: minih5::Datatype, sp: minih5::Dataspace| match chunk {
                    Some(c) if c.len() == sp.rank() => dst.create_dataset_chunked(n, t, sp, c),
                    _ => dst.create_dataset(n, t, sp),
                };
                copy_dataset(&s, &make, &name);
            }
        }
    }
}

fn walk_root(src: &H5File, dst: &H5File, chunk: &Option<Vec<u64>>) {
    for (name, kind) in src.list().expect("list source file") {
        match kind {
            ObjKind::Group | ObjKind::File => {
                let s = src.open_group(&name).expect("open source group");
                let d = dst.create_group(&name).expect("create destination group");
                walk(&s, &d, chunk);
            }
            ObjKind::Dataset => {
                let s = src.open_dataset(&name).expect("open source dataset");
                let make = |n: &str, t: minih5::Datatype, sp: minih5::Dataspace| match chunk {
                    Some(c) if c.len() == sp.rank() => dst.create_dataset_chunked(n, t, sp, c),
                    _ => dst.create_dataset(n, t, sp),
                };
                copy_dataset(&s, &make, &name);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: nh5repack <in.nh5> <out.nh5> [--chunk d0,d1,..]");
        std::process::exit(2);
    }
    let mut chunk: Option<Vec<u64>> = None;
    if let Some(i) = args.iter().position(|a| a == "--chunk") {
        let spec = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("--chunk needs a value like 64,64");
            std::process::exit(2);
        });
        chunk = Some(
            spec.split(',')
                .map(|s| s.parse::<u64>().expect("chunk dims must be integers"))
                .collect(),
        );
    }
    let h5 = H5::native();
    let src = h5.open_file(&args[0]).unwrap_or_else(|e| {
        eprintln!("{}: {e}", args[0]);
        std::process::exit(1);
    });
    let dst = h5.create_file(&args[1]).unwrap_or_else(|e| {
        eprintln!("{}: {e}", args[1]);
        std::process::exit(1);
    });
    walk_root(&src, &dst, &chunk);
    dst.close().expect("close destination");
    let _ = src.close();
    let before = std::fs::metadata(&args[0]).map(|m| m.len()).unwrap_or(0);
    let after = std::fs::metadata(&args[1]).map(|m| m.len()).unwrap_or(0);
    println!("repacked {} ({} B) -> {} ({} B)", args[0], before, args[1], after);
}
