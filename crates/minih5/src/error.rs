//! Error type shared by the whole data-model stack.

use std::fmt;

/// Result alias used across `minih5` and its VOL plugins.
pub type H5Result<T> = Result<T, H5Error>;

/// Errors surfaced by the data model, the native file backend, and VOL
/// plugins.
#[derive(Debug)]
pub enum H5Error {
    /// A named object (group, dataset, attribute, file) does not exist.
    NotFound(String),
    /// An object with that name already exists at the target location.
    AlreadyExists(String),
    /// The operation does not apply to this kind of object.
    WrongKind { expected: &'static str, found: &'static str },
    /// A selection or buffer does not fit the dataset's space or type.
    ShapeMismatch(String),
    /// The handle has been closed or was never valid.
    InvalidHandle(u64),
    /// The file's on-disk structure is corrupt or not a minih5 file.
    Format(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A VOL plugin rejected or failed the operation.
    Vol(String),
    /// A remote peer (producer/server rank) died or stopped answering;
    /// the operation gave up after its configured timeout and retries.
    PeerUnavailable(String),
}

impl fmt::Display for H5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H5Error::NotFound(n) => write!(f, "object not found: {n}"),
            H5Error::AlreadyExists(n) => write!(f, "object already exists: {n}"),
            H5Error::WrongKind { expected, found } => {
                write!(f, "wrong object kind: expected {expected}, found {found}")
            }
            H5Error::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            H5Error::InvalidHandle(h) => write!(f, "invalid or closed handle: {h}"),
            H5Error::Format(m) => write!(f, "file format error: {m}"),
            H5Error::Io(e) => write!(f, "I/O error: {e}"),
            H5Error::Vol(m) => write!(f, "VOL plugin error: {m}"),
            H5Error::PeerUnavailable(m) => write!(f, "peer unavailable: {m}"),
        }
    }
}

impl std::error::Error for H5Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            H5Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for H5Error {
    fn from(e: std::io::Error) -> Self {
        H5Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(H5Error::NotFound("g/x".into()).to_string(), "object not found: g/x");
        let e = H5Error::WrongKind { expected: "dataset", found: "group" };
        assert!(e.to_string().contains("expected dataset"));
    }

    #[test]
    fn peer_unavailable_formats() {
        let e = H5Error::PeerUnavailable("producer rank 2 dead".into());
        assert_eq!(e.to_string(), "peer unavailable: producer rank 2 dead");
    }

    #[test]
    fn io_error_source_preserved() {
        use std::error::Error;
        let e = H5Error::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
