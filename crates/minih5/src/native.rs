//! The native VOL connector: real file I/O in the crate's own format.
//!
//! This is the analogue of HDF5's native (storage) VOL, including its
//! parallel mode: a parallel task constructs one `NativeVol` per rank with
//! [`NativeVol::parallel`], hands it the task's barrier, and performs
//! metadata calls collectively. Rank 0 writes the header/metadata/trailer;
//! every rank writes its own hyperslabs with positioned writes into the
//! shared file — no cross-rank data shipping, like MPI-IO.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::datatype::Datatype;
use crate::error::{H5Error, H5Result};
use crate::format::{self, ChunkIndex, FileMeta, HEADER_LEN};
use crate::selection::Selection;
use crate::space::Dataspace;
use crate::tree::{Hierarchy, NodeId, ObjKind, Ownership};
use crate::vol::{ObjId, Vol};

type BarrierFn = Arc<dyn Fn() + Send + Sync>;

/// Chunked-layout state of one dataset: chunk shape plus allocated chunk
/// offsets keyed by chunk grid coordinates.
struct ChunkState {
    chunk: Vec<u64>,
    index: HashMap<Vec<u64>, u64>,
}

struct OpenFile {
    handle: Arc<File>,
    hier: Hierarchy,
    root: NodeId,
    /// Data extent offsets per contiguous dataset node.
    offsets: HashMap<NodeId, u64>,
    /// Chunked-layout state per chunked dataset node.
    chunked: HashMap<NodeId, ChunkState>,
    /// Next free byte in the data region (write mode).
    cursor: u64,
    writable: bool,
    path: String,
}

#[derive(Clone, Copy)]
struct ObjRef {
    file: ObjId,
    node: NodeId,
}

#[derive(Default)]
struct State {
    next_id: ObjId,
    files: HashMap<ObjId, OpenFile>,
    objects: HashMap<ObjId, ObjRef>,
}

impl State {
    fn mint(&mut self) -> ObjId {
        self.next_id += 1;
        self.next_id
    }

    fn obj(&self, id: ObjId) -> H5Result<ObjRef> {
        self.objects.get(&id).copied().ok_or(H5Error::InvalidHandle(id))
    }

    fn file_of(&self, r: ObjRef) -> H5Result<&OpenFile> {
        self.files.get(&r.file).ok_or(H5Error::InvalidHandle(r.file))
    }

    fn file_of_mut(&mut self, r: ObjRef) -> H5Result<&mut OpenFile> {
        self.files.get_mut(&r.file).ok_or(H5Error::InvalidHandle(r.file))
    }
}

/// The file-backed VOL connector.
pub struct NativeVol {
    rank: usize,
    barrier: Option<BarrierFn>,
    state: Mutex<State>,
}

impl NativeVol {
    /// A single-process connector (no coordination needed).
    pub fn serial() -> Self {
        NativeVol { rank: 0, barrier: None, state: Mutex::default() }
    }

    /// A connector for rank `rank` of a parallel task. `barrier` must block
    /// until every rank of the task has called it (e.g.
    /// `move || comm.barrier()`).
    pub fn parallel(rank: usize, barrier: impl Fn() + Send + Sync + 'static) -> Self {
        NativeVol { rank, barrier: Some(Arc::new(barrier)), state: Mutex::default() }
    }

    fn sync(&self) {
        if let Some(b) = &self.barrier {
            b();
        }
    }

    /// Collect the file's metadata blob from the in-memory hierarchy.
    fn build_meta(of: &OpenFile) -> FileMeta {
        let chunk_map: HashMap<NodeId, ChunkIndex> = of
            .chunked
            .iter()
            .map(|(&node, cs)| {
                let mut offsets: Vec<(Vec<u64>, u64)> =
                    cs.index.iter().map(|(c, &o)| (c.clone(), o)).collect();
                offsets.sort();
                (node, ChunkIndex { chunk: cs.chunk.clone(), offsets })
            })
            .collect();
        format::export_meta_with_chunks(&of.hier, of.root, Some(&of.offsets), Some(&chunk_map))
    }

    /// Allocate (densely) every chunk of the grid covering `dims` that is
    /// not yet in the index. Deterministic across ranks given identical
    /// collective calls.
    fn allocate_chunks(cs: &mut ChunkState, dims: &[u64], cursor: &mut u64, bytes_per_chunk: u64) {
        let counts: Vec<u64> = dims.iter().zip(&cs.chunk).map(|(&d, &c)| d.div_ceil(c)).collect();
        let mut coord = vec![0u64; dims.len()];
        loop {
            if !cs.index.contains_key(&coord) {
                cs.index.insert(coord.clone(), *cursor);
                *cursor += bytes_per_chunk;
            }
            // Odometer.
            let mut i = coord.len();
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                coord[i] += 1;
                if coord[i] < counts[i] {
                    break;
                }
                coord[i] = 0;
            }
        }
    }
}

/// One positioned-I/O operation of a chunked plan:
/// `(file offset, packed-buffer byte offset, byte length)`.
type IoOp = (u64, usize, usize);

/// Build the positioned-I/O plan mapping a selection onto chunk storage.
/// Every op is contiguous on both sides (selection pieces never cross a
/// chunk row).
fn chunk_plan(
    cs: &ChunkState,
    space: &Dataspace,
    sel: &Selection,
    es: usize,
) -> H5Result<Vec<IoOp>> {
    let dims = space.dims();
    let bb = sel.bbox(space);
    if bb.is_empty() {
        return Ok(Vec::new());
    }
    let sel_runs = sel.runs(space);
    let lo: Vec<u64> = bb.lo.iter().zip(&cs.chunk).map(|(l, c)| l / c).collect();
    let hi: Vec<u64> = bb.hi.iter().zip(&cs.chunk).map(|(h, c)| (h - 1) / c).collect();
    let mut plan = Vec::new();
    let mut coord = lo.clone();
    loop {
        let base = *cs
            .index
            .get(&coord)
            .ok_or_else(|| H5Error::Format(format!("chunk {coord:?} not allocated")))?;
        let origin: Vec<u64> = coord.iter().zip(&cs.chunk).map(|(&k, &c)| k * c).collect();
        let clipped = crate::selection::BBox::new(
            origin.clone(),
            origin.iter().zip(&cs.chunk).zip(dims).map(|((&o, &c), &d)| (o + c).min(d)).collect(),
        );
        if !clipped.is_empty() {
            let chunk_runs = clipped.to_selection().runs(space);
            for ov in crate::selection::overlap_runs(&sel_runs, &chunk_runs) {
                // Element position within the (full-shape) stored chunk.
                let gcoord = space.delinearize(ov.offset);
                let mut pos = 0u64;
                for i in 0..gcoord.len() {
                    pos = pos * cs.chunk[i] + (gcoord[i] - origin[i]);
                }
                plan.push((
                    base + pos * es as u64,
                    (ov.a_off as usize) * es,
                    (ov.len as usize) * es,
                ));
            }
        }
        // Odometer over the chunk-coordinate box [lo, hi].
        let mut i = coord.len();
        loop {
            if i == 0 {
                return Ok(plan);
            }
            i -= 1;
            if coord[i] < hi[i] {
                coord[i] += 1;
                let rest = i + 1..coord.len();
                coord[rest.clone()].copy_from_slice(&lo[rest]);
                break;
            }
        }
    }
}

impl Vol for NativeVol {
    fn vol_name(&self) -> &'static str {
        "native"
    }

    fn file_create(&self, name: &str) -> H5Result<ObjId> {
        let handle = if self.rank == 0 {
            let f =
                OpenOptions::new().read(true).write(true).create(true).truncate(true).open(name)?;
            format::write_header(&f)?;
            self.sync(); // release peers to open the now-existing file
            f
        } else {
            self.sync(); // wait for rank 0 to create it
            OpenOptions::new().read(true).write(true).open(name)?
        };
        let mut st = self.state.lock();
        let mut hier = Hierarchy::new();
        let root = hier.create_file(name)?;
        let id = st.mint();
        st.files.insert(
            id,
            OpenFile {
                handle: Arc::new(handle),
                hier,
                root,
                offsets: HashMap::new(),
                chunked: HashMap::new(),
                cursor: HEADER_LEN,
                writable: true,
                path: name.to_string(),
            },
        );
        st.objects.insert(id, ObjRef { file: id, node: root });
        Ok(id)
    }

    fn file_open(&self, name: &str) -> H5Result<ObjId> {
        let mut f = File::open(name)?;
        let meta = format::read_metadata(&mut f)?;
        let mut hier = Hierarchy::new();
        let root = hier.create_file(name)?;
        let dataset_nodes = format::import_meta(&mut hier, root, &meta)?;
        let offsets: HashMap<NodeId, u64> = meta
            .datasets
            .iter()
            .filter(|d| d.chunks.is_none())
            .map(|d| (dataset_nodes[&d.path], d.offset))
            .collect();
        let chunked: HashMap<NodeId, ChunkState> = meta
            .datasets
            .iter()
            .filter_map(|d| {
                d.chunks.as_ref().map(|ci| {
                    (
                        dataset_nodes[&d.path],
                        ChunkState {
                            chunk: ci.chunk.clone(),
                            index: ci.offsets.iter().cloned().collect(),
                        },
                    )
                })
            })
            .collect();
        let mut st = self.state.lock();
        let id = st.mint();
        st.files.insert(
            id,
            OpenFile {
                handle: Arc::new(f),
                hier,
                root,
                offsets,
                chunked,
                cursor: 0,
                writable: false,
                path: name.to_string(),
            },
        );
        st.objects.insert(id, ObjRef { file: id, node: root });
        Ok(id)
    }

    fn file_close(&self, file: ObjId) -> H5Result<()> {
        // Snapshot what we need, then do I/O outside the lock.
        let (writable, handle, meta, cursor) = {
            let st = self.state.lock();
            let r = st.obj(file)?;
            let of = st.file_of(r)?;
            let meta = of.writable.then(|| Self::build_meta(of));
            (of.writable, Arc::clone(&of.handle), meta, of.cursor)
        };
        if writable {
            // All ranks must have completed their data writes.
            self.sync();
            if self.rank == 0 {
                format::write_metadata(&handle, cursor, &meta.expect("writable file has meta"))?;
            }
            // Nobody may re-open the file for reading until the metadata
            // and trailer are on disk.
            self.sync();
        }
        let mut st = self.state.lock();
        st.objects.remove(&file);
        if let Some(of) = st.files.remove(&file) {
            let _ = of.path;
        }
        Ok(())
    }

    fn group_create(&self, parent: ObjId, name: &str) -> H5Result<ObjId> {
        let mut st = self.state.lock();
        let r = st.obj(parent)?;
        let of = st.file_of_mut(r)?;
        if !of.writable {
            return Err(H5Error::Vol("file is read-only".into()));
        }
        let node = of.hier.create_group(r.node, name)?;
        let id = st.mint();
        st.objects.insert(id, ObjRef { file: r.file, node });
        Ok(id)
    }

    fn open_path(&self, parent: ObjId, path: &str) -> H5Result<ObjId> {
        let mut st = self.state.lock();
        let r = st.obj(parent)?;
        let of = st.file_of(r)?;
        let node = of.hier.resolve(r.node, path)?;
        let id = st.mint();
        st.objects.insert(id, ObjRef { file: r.file, node });
        Ok(id)
    }

    fn dataset_create(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
    ) -> H5Result<ObjId> {
        let mut st = self.state.lock();
        let r = st.obj(parent)?;
        let of = st.file_of_mut(r)?;
        if !of.writable {
            return Err(H5Error::Vol("file is read-only".into()));
        }
        let node = of.hier.create_dataset(r.node, name, dtype.clone(), space.clone())?;
        let extent = space.npoints() * dtype.size() as u64;
        of.offsets.insert(node, of.cursor);
        of.cursor += extent;
        let id = st.mint();
        st.objects.insert(id, ObjRef { file: r.file, node });
        Ok(id)
    }

    fn dataset_create_chunked(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
        chunk: &[u64],
    ) -> H5Result<ObjId> {
        let mut st = self.state.lock();
        let r = st.obj(parent)?;
        let of = st.file_of_mut(r)?;
        if !of.writable {
            return Err(H5Error::Vol("file is read-only".into()));
        }
        let node = of.hier.create_dataset_chunked(
            r.node,
            name,
            dtype.clone(),
            space.clone(),
            chunk.to_vec(),
        )?;
        let mut cs = ChunkState { chunk: chunk.to_vec(), index: HashMap::new() };
        let bytes_per_chunk = chunk.iter().product::<u64>() * dtype.size() as u64;
        let mut cursor = of.cursor;
        Self::allocate_chunks(&mut cs, space.dims(), &mut cursor, bytes_per_chunk);
        of.cursor = cursor;
        of.chunked.insert(node, cs);
        let id = st.mint();
        st.objects.insert(id, ObjRef { file: r.file, node });
        Ok(id)
    }

    fn dataset_extend(&self, dset: ObjId, new_dims: &[u64]) -> H5Result<()> {
        let mut st = self.state.lock();
        let r = st.obj(dset)?;
        let of = st.file_of_mut(r)?;
        if !of.writable {
            return Err(H5Error::Vol("file is read-only".into()));
        }
        if !of.chunked.contains_key(&r.node) {
            return Err(H5Error::Vol(
                "extension requires chunked layout (create_dataset_chunked)".into(),
            ));
        }
        let (dtype, _) = of.hier.dataset_meta(r.node)?;
        of.hier.extend_dataset(r.node, new_dims)?;
        let cs = of.chunked.get_mut(&r.node).expect("checked above");
        let bytes_per_chunk = cs.chunk.iter().product::<u64>() * dtype.size() as u64;
        let mut cursor = of.cursor;
        Self::allocate_chunks(cs, new_dims, &mut cursor, bytes_per_chunk);
        of.cursor = cursor;
        Ok(())
    }

    fn dataset_chunk(&self, dset: ObjId) -> H5Result<Option<Vec<u64>>> {
        let st = self.state.lock();
        let r = st.obj(dset)?;
        Ok(st.file_of(r)?.chunked.get(&r.node).map(|cs| cs.chunk.clone()))
    }

    fn dataset_meta(&self, dset: ObjId) -> H5Result<(Datatype, Dataspace)> {
        let st = self.state.lock();
        let r = st.obj(dset)?;
        st.file_of(r)?.hier.dataset_meta(r.node)
    }

    fn dataset_write(
        &self,
        dset: ObjId,
        file_sel: &Selection,
        data: Bytes,
        _ownership: Ownership,
    ) -> H5Result<()> {
        let (handle, plan, npoints, es) = {
            let st = self.state.lock();
            let r = st.obj(dset)?;
            let of = st.file_of(r)?;
            if !of.writable {
                return Err(H5Error::Vol("file is read-only".into()));
            }
            let (dtype, space) = of.hier.dataset_meta(r.node)?;
            file_sel.validate(&space)?;
            let es = dtype.size();
            let plan: Vec<IoOp> = match of.chunked.get(&r.node) {
                Some(cs) => chunk_plan(cs, &space, file_sel, es)?,
                None => {
                    let base = of.offsets[&r.node];
                    let mut packed = 0usize;
                    file_sel
                        .runs(&space)
                        .into_iter()
                        .map(|run| {
                            let n = (run.len as usize) * es;
                            let op = (base + run.offset * es as u64, packed, n);
                            packed += n;
                            op
                        })
                        .collect()
                }
            };
            (Arc::clone(&of.handle), plan, file_sel.npoints(&space), es)
        };
        if data.len() as u64 != npoints * es as u64 {
            return Err(H5Error::ShapeMismatch(format!(
                "write buffer is {} bytes, selection needs {}",
                data.len(),
                npoints * es as u64
            )));
        }
        for (file_off, buf_off, n) in plan {
            handle.write_all_at(&data[buf_off..buf_off + n], file_off)?;
        }
        Ok(())
    }

    fn dataset_read(&self, dset: ObjId, file_sel: &Selection) -> H5Result<Bytes> {
        let (handle, plan, npoints, es) = {
            let st = self.state.lock();
            let r = st.obj(dset)?;
            let of = st.file_of(r)?;
            let (dtype, space) = of.hier.dataset_meta(r.node)?;
            file_sel.validate(&space)?;
            let es = dtype.size();
            let plan: Vec<IoOp> = match of.chunked.get(&r.node) {
                Some(cs) => chunk_plan(cs, &space, file_sel, es)?,
                None => {
                    let base = of.offsets[&r.node];
                    let mut packed = 0usize;
                    file_sel
                        .runs(&space)
                        .into_iter()
                        .map(|run| {
                            let n = (run.len as usize) * es;
                            let op = (base + run.offset * es as u64, packed, n);
                            packed += n;
                            op
                        })
                        .collect()
                }
            };
            (Arc::clone(&of.handle), plan, file_sel.npoints(&space), es)
        };
        let mut out = vec![0u8; (npoints as usize) * es];
        for (file_off, buf_off, n) in plan {
            handle.read_exact_at(&mut out[buf_off..buf_off + n], file_off)?;
        }
        Ok(Bytes::from(out))
    }

    fn attr_write(&self, obj: ObjId, name: &str, dtype: &Datatype, data: Bytes) -> H5Result<()> {
        let mut st = self.state.lock();
        let r = st.obj(obj)?;
        let of = st.file_of_mut(r)?;
        if !of.writable {
            return Err(H5Error::Vol("file is read-only".into()));
        }
        of.hier.set_attr(r.node, name, dtype.clone(), data);
        Ok(())
    }

    fn attr_read(&self, obj: ObjId, name: &str) -> H5Result<(Datatype, Bytes)> {
        let st = self.state.lock();
        let r = st.obj(obj)?;
        st.file_of(r)?.hier.attr(r.node, name)
    }

    fn list(&self, obj: ObjId) -> H5Result<Vec<(String, ObjKind)>> {
        let st = self.state.lock();
        let r = st.obj(obj)?;
        Ok(st.file_of(r)?.hier.children_of(r.node))
    }

    fn obj_kind(&self, obj: ObjId) -> H5Result<ObjKind> {
        let st = self.state.lock();
        let r = st.obj(obj)?;
        Ok(st.file_of(r)?.hier.node(r.node).obj_kind())
    }

    fn object_close(&self, obj: ObjId) -> H5Result<()> {
        let mut st = self.state.lock();
        // Closing the file handle itself goes through file_close.
        if st.files.contains_key(&obj) {
            return Ok(());
        }
        st.objects.remove(&obj);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::elems_as_bytes;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("minih5-native-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn serial_write_read_roundtrip() {
        let vol = NativeVol::serial();
        let path = tmp("roundtrip.nh5");
        let f = vol.file_create(&path).unwrap();
        let g = vol.group_create(f, "g1").unwrap();
        let sp = Dataspace::simple(&[4, 4]);
        let d = vol.dataset_create(g, "grid", &Datatype::UInt64, &sp).unwrap();
        let vals: Vec<u64> = (0..16).collect();
        vol.dataset_write(
            d,
            &Selection::all(),
            Bytes::copy_from_slice(elems_as_bytes(&vals)),
            Ownership::Deep,
        )
        .unwrap();
        vol.attr_write(f, "step", &Datatype::UInt32, Bytes::from_static(&[7, 0, 0, 0])).unwrap();
        vol.file_close(f).unwrap();

        let f = vol.file_open(&path).unwrap();
        let d = vol.open_path(f, "g1/grid").unwrap();
        let (dt, sp2) = vol.dataset_meta(d).unwrap();
        assert_eq!(dt, Datatype::UInt64);
        assert_eq!(sp2, sp);
        let back = vol.dataset_read(d, &Selection::all()).unwrap();
        assert_eq!(&back[..], elems_as_bytes(&vals));
        let (adt, ab) = vol.attr_read(f, "step").unwrap();
        assert_eq!(adt, Datatype::UInt32);
        assert_eq!(&ab[..], &[7, 0, 0, 0]);
        vol.file_close(f).unwrap();
    }

    #[test]
    fn hyperslab_write_then_partial_read() {
        let vol = NativeVol::serial();
        let path = tmp("slab.nh5");
        let f = vol.file_create(&path).unwrap();
        let sp = Dataspace::simple(&[4, 6]);
        let d = vol.dataset_create(f, "d", &Datatype::UInt8, &sp).unwrap();
        // Write two disjoint row blocks.
        vol.dataset_write(
            d,
            &Selection::block(&[0, 0], &[2, 6]),
            Bytes::from(vec![1u8; 12]),
            Ownership::Deep,
        )
        .unwrap();
        vol.dataset_write(
            d,
            &Selection::block(&[2, 0], &[2, 6]),
            Bytes::from(vec![2u8; 12]),
            Ownership::Deep,
        )
        .unwrap();
        vol.file_close(f).unwrap();

        let f = vol.file_open(&path).unwrap();
        let d = vol.open_path(f, "d").unwrap();
        let col = vol.dataset_read(d, &Selection::block(&[0, 3], &[4, 1])).unwrap();
        assert_eq!(&col[..], &[1, 1, 2, 2]);
        vol.file_close(f).unwrap();
    }

    #[test]
    fn read_only_files_reject_writes() {
        let vol = NativeVol::serial();
        let path = tmp("ro.nh5");
        let f = vol.file_create(&path).unwrap();
        vol.dataset_create(f, "d", &Datatype::UInt8, &Dataspace::simple(&[1])).unwrap();
        vol.file_close(f).unwrap();
        let f = vol.file_open(&path).unwrap();
        assert!(vol.group_create(f, "g").is_err());
        let d = vol.open_path(f, "d").unwrap();
        assert!(vol
            .dataset_write(d, &Selection::all(), Bytes::from_static(&[0]), Ownership::Deep)
            .is_err());
        vol.file_close(f).unwrap();
    }

    #[test]
    fn closed_handles_are_invalid() {
        let vol = NativeVol::serial();
        let path = tmp("closed.nh5");
        let f = vol.file_create(&path).unwrap();
        vol.dataset_create(f, "d", &Datatype::UInt8, &Dataspace::simple(&[1])).unwrap();
        vol.file_close(f).unwrap();
        assert!(matches!(vol.list(f), Err(H5Error::InvalidHandle(_))));
    }

    #[test]
    fn multiple_datasets_get_disjoint_extents() {
        let vol = NativeVol::serial();
        let path = tmp("extents.nh5");
        let f = vol.file_create(&path).unwrap();
        let d1 = vol.dataset_create(f, "a", &Datatype::UInt8, &Dataspace::simple(&[8])).unwrap();
        let d2 = vol.dataset_create(f, "b", &Datatype::UInt8, &Dataspace::simple(&[8])).unwrap();
        vol.dataset_write(d1, &Selection::all(), Bytes::from(vec![1u8; 8]), Ownership::Deep)
            .unwrap();
        vol.dataset_write(d2, &Selection::all(), Bytes::from(vec![2u8; 8]), Ownership::Deep)
            .unwrap();
        vol.file_close(f).unwrap();
        let f = vol.file_open(&path).unwrap();
        let d1 = vol.open_path(f, "a").unwrap();
        let d2 = vol.open_path(f, "b").unwrap();
        assert_eq!(&vol.dataset_read(d1, &Selection::all()).unwrap()[..], &[1u8; 8]);
        assert_eq!(&vol.dataset_read(d2, &Selection::all()).unwrap()[..], &[2u8; 8]);
        vol.file_close(f).unwrap();
    }

    #[test]
    fn list_and_kinds() {
        let vol = NativeVol::serial();
        let path = tmp("list.nh5");
        let f = vol.file_create(&path).unwrap();
        let g = vol.group_create(f, "g").unwrap();
        vol.dataset_create(g, "d", &Datatype::Float32, &Dataspace::simple(&[2])).unwrap();
        assert_eq!(vol.obj_kind(f).unwrap(), ObjKind::File);
        assert_eq!(vol.obj_kind(g).unwrap(), ObjKind::Group);
        let ls = vol.list(f).unwrap();
        assert_eq!(ls, vec![("g".to_string(), ObjKind::Group)]);
        vol.file_close(f).unwrap();
    }

    #[test]
    fn split_path_cases() {
        use crate::format::split_meta_path;
        assert_eq!(split_meta_path("a/b/c"), ("a/b", "c"));
        assert_eq!(split_meta_path("solo"), ("", "solo"));
    }
}
