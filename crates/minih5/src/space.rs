//! Dataspaces: n-dimensional extents, row-major linearization helpers.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::{H5Error, H5Result};

/// Maximum-dimension value meaning "no limit" (HDF5 `H5S_UNLIMITED`).
pub const UNLIMITED: u64 = u64::MAX;

/// The extent of a dataset: a list of dimension sizes (row-major, slowest
/// dimension first, matching HDF5 convention). A rank-0 space is a scalar
/// holding exactly one element. A space created with
/// [`Dataspace::extensible`] can later grow toward its maximum dimensions
/// via `Dataset::extend`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataspace {
    dims: Vec<u64>,
    /// Per-dimension maxima; `None` = fixed shape.
    maxdims: Option<Vec<u64>>,
}

impl Dataspace {
    /// A simple n-dimensional space.
    pub fn simple(dims: &[u64]) -> Self {
        Dataspace { dims: dims.to_vec(), maxdims: None }
    }

    /// An extensible space: `maxdims[i]` bounds dimension `i`
    /// ([`UNLIMITED`] = unbounded). Every `maxdims[i] ≥ dims[i]`.
    pub fn extensible(dims: &[u64], maxdims: &[u64]) -> Self {
        assert_eq!(dims.len(), maxdims.len(), "rank mismatch");
        assert!(dims.iter().zip(maxdims).all(|(d, m)| d <= m), "maxdims must dominate dims");
        Dataspace { dims: dims.to_vec(), maxdims: Some(maxdims.to_vec()) }
    }

    /// A scalar space (one element, rank 0).
    pub fn scalar() -> Self {
        Dataspace { dims: Vec::new(), maxdims: None }
    }

    /// Per-dimension maxima, if the space is extensible.
    pub fn maxdims(&self) -> Option<&[u64]> {
        self.maxdims.as_deref()
    }

    /// Whether the space can grow at all.
    pub fn is_extensible(&self) -> bool {
        self.maxdims.is_some()
    }

    /// Validate a proposed new shape: monotone growth within maxdims;
    /// only the first (slowest-varying) dimension may grow, matching the
    /// HDF5 time-series append pattern and keeping the row-major offsets
    /// of previously written elements stable.
    pub fn can_extend_to(&self, new_dims: &[u64]) -> crate::error::H5Result<()> {
        use crate::error::H5Error;
        let max = self
            .maxdims
            .as_ref()
            .ok_or_else(|| H5Error::ShapeMismatch("dataset is not extensible".into()))?;
        if new_dims.len() != self.dims.len() {
            return Err(H5Error::ShapeMismatch("extend changes rank".into()));
        }
        for (i, (&nd, (&d, &m))) in new_dims.iter().zip(self.dims.iter().zip(max)).enumerate() {
            if nd < d {
                return Err(H5Error::ShapeMismatch(format!("dim {i} shrinks ({d} → {nd})")));
            }
            if nd > m {
                return Err(H5Error::ShapeMismatch(format!("dim {i} exceeds max {m}")));
            }
            if i > 0 && nd != d {
                return Err(H5Error::ShapeMismatch("only the first dimension may grow".into()));
            }
        }
        Ok(())
    }

    /// Grow the extent (validated by [`Dataspace::can_extend_to`]).
    pub fn extend_to(&mut self, new_dims: &[u64]) -> crate::error::H5Result<()> {
        self.can_extend_to(new_dims)?;
        self.dims = new_dims.to_vec();
        Ok(())
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn npoints(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Row-major strides in *elements*: `strides[i]` is the linear distance
    /// between consecutive indices in dimension `i`.
    pub fn strides(&self) -> Vec<u64> {
        let mut s = vec![1u64; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.dims[i + 1];
        }
        s
    }

    /// Linear element offset of a coordinate.
    ///
    /// # Panics
    /// Panics (debug) if `coord` has the wrong rank.
    pub fn linearize(&self, coord: &[u64]) -> u64 {
        debug_assert_eq!(coord.len(), self.dims.len());
        self.strides().iter().zip(coord).map(|(s, c)| s * c).sum()
    }

    /// Inverse of [`Dataspace::linearize`].
    pub fn delinearize(&self, mut linear: u64) -> Vec<u64> {
        let strides = self.strides();
        let mut coord = vec![0u64; self.dims.len()];
        for (i, s) in strides.iter().enumerate() {
            coord[i] = linear / s;
            linear %= s;
        }
        coord
    }
}

impl From<&[u64]> for Dataspace {
    fn from(dims: &[u64]) -> Self {
        Dataspace::simple(dims)
    }
}

impl Encode for Dataspace {
    fn encode(&self, w: &mut Writer) {
        w.put_u64s(&self.dims);
        match &self.maxdims {
            None => w.put_u8(0),
            Some(m) => {
                w.put_u8(1);
                w.put_u64s(m);
            }
        }
    }
}

impl Decode for Dataspace {
    fn decode(r: &mut Reader<'_>) -> H5Result<Self> {
        let dims = r.get_u64s()?;
        if dims.len() > 32 {
            return Err(H5Error::Format("dataspace rank exceeds 32".into()));
        }
        let maxdims = match r.get_u8()? {
            0 => None,
            1 => {
                let m = r.get_u64s()?;
                if m.len() != dims.len() {
                    return Err(H5Error::Format("maxdims rank mismatch".into()));
                }
                Some(m)
            }
            t => return Err(H5Error::Format(format!("bad maxdims flag {t}"))),
        };
        Ok(Dataspace { dims, maxdims })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Decode, Encode};

    #[test]
    fn npoints_and_rank() {
        let s = Dataspace::simple(&[4, 5, 6]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.npoints(), 120);
        assert_eq!(Dataspace::scalar().npoints(), 1);
        assert_eq!(Dataspace::scalar().rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Dataspace::simple(&[4, 5, 6]).strides(), vec![30, 6, 1]);
        assert_eq!(Dataspace::simple(&[7]).strides(), vec![1]);
        assert!(Dataspace::scalar().strides().is_empty());
    }

    #[test]
    fn linearize_roundtrip() {
        let s = Dataspace::simple(&[3, 4, 5]);
        for linear in 0..s.npoints() {
            let c = s.delinearize(linear);
            assert_eq!(s.linearize(&c), linear);
            assert!(c.iter().zip(s.dims()).all(|(x, d)| x < d));
        }
    }

    #[test]
    fn codec_roundtrip() {
        let s = Dataspace::simple(&[9, 1, 1024]);
        assert_eq!(Dataspace::from_bytes(&s.to_bytes()).unwrap(), s);
    }
}

#[cfg(test)]
mod extensible_tests {
    use super::*;
    use crate::codec::{Decode, Encode};

    #[test]
    fn extensible_grows_first_dim() {
        let mut s = Dataspace::extensible(&[4, 8], &[UNLIMITED, 8]);
        assert!(s.is_extensible());
        assert!(s.can_extend_to(&[10, 8]).is_ok());
        s.extend_to(&[10, 8]).unwrap();
        assert_eq!(s.dims(), &[10, 8]);
    }

    #[test]
    fn extension_rules_enforced() {
        let s = Dataspace::extensible(&[4, 8], &[16, 16]);
        assert!(s.can_extend_to(&[3, 8]).is_err()); // shrink
        assert!(s.can_extend_to(&[20, 8]).is_err()); // beyond max
        assert!(s.can_extend_to(&[4, 9]).is_err()); // non-leading dim
        assert!(s.can_extend_to(&[4, 8, 1]).is_err()); // rank change
        assert!(Dataspace::simple(&[4]).can_extend_to(&[5]).is_err()); // fixed
    }

    #[test]
    fn extensible_codec_roundtrip() {
        let s = Dataspace::extensible(&[2, 3], &[UNLIMITED, 3]);
        assert_eq!(Dataspace::from_bytes(&s.to_bytes()).unwrap(), s);
        let f = Dataspace::simple(&[7]);
        assert_eq!(Dataspace::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    #[should_panic(expected = "dominate")]
    fn maxdims_must_dominate() {
        let _ = Dataspace::extensible(&[4], &[2]);
    }
}
