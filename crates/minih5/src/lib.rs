//! # minih5 — an HDF5-like hierarchical data model with a virtual object layer
//!
//! `minih5` is the from-scratch HDF5 substitute that the LowFive
//! reproduction is built on. It provides the pieces of HDF5 that the paper
//! relies on:
//!
//! * a **typed, hierarchical data model**: files contain groups, groups
//!   contain datasets and attributes; datasets have a [`Datatype`]
//!   (integers, floats, fixed strings, compounds, arrays) and a
//!   [`Dataspace`] (n-dimensional extent),
//! * **partial I/O through selections**: [`Selection`] expresses HDF5-style
//!   hyperslabs (start/stride/count/block) and point sets, with the algebra
//!   LowFive needs — bounding boxes, intersection, linearized contiguous
//!   [`selection::Run`]s and run overlaps for efficient packing,
//! * a **virtual object layer**: every public API call dispatches through
//!   the [`vol::Vol`] trait, exactly as HDF5 ≥ 1.12 routes every operation
//!   through a VOL plugin. The built-in [`native::NativeVol`] performs real
//!   file I/O in the crate's own binary format; the `lowfive` crate plugs
//!   in its metadata and distributed-metadata VOLs without any change to
//!   the calling application,
//! * a **thread-scoped plugin registry** ([`vol::set_thread_vol`]): the
//!   orchestration layer installs a VOL for a task's thread and the task's
//!   unmodified `H5::open_default()` calls pick it up — the reproduction of
//!   the paper's "no source-code modification, set two environment
//!   variables" deployment story.
//!
//! The user-facing entry points are [`H5`], [`H5File`], [`Group`], and
//! [`Dataset`] in [`api`].
//!
//! ## Example
//!
//! ```
//! use minih5::{Datatype, Dataspace, Selection, H5};
//!
//! let dir = std::env::temp_dir().join("minih5-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.nh5");
//!
//! // Write a 2-D dataset through the native VOL.
//! let h5 = H5::native();
//! let f = h5.create_file(path.to_str().unwrap()).unwrap();
//! let g = f.create_group("group1").unwrap();
//! let d = g
//!     .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&[4, 6]))
//!     .unwrap();
//! let data: Vec<u64> = (0..24).collect();
//! d.write_all(&data).unwrap();
//! f.close().unwrap();
//!
//! // Read back a 2x3 hyperslab.
//! let f = h5.open_file(path.to_str().unwrap()).unwrap();
//! let d = f.open_dataset("group1/grid").unwrap();
//! let sel = Selection::block(&[1, 2], &[2, 3]);
//! let part: Vec<u64> = d.read_selection(&sel).unwrap();
//! assert_eq!(part, vec![8, 9, 10, 14, 15, 16]);
//! ```

pub mod api;
pub mod codec;
pub mod datatype;
pub mod error;
pub mod format;
pub mod native;
pub mod selection;
pub mod space;
pub mod tree;
pub mod vol;

pub use api::{Dataset, Group, H5File, H5};
pub use datatype::Datatype;
pub use error::{H5Error, H5Result};
pub use selection::{BBox, Run, Selection};
pub use space::Dataspace;
pub use tree::{DataRegion, Hierarchy, NodeId, ObjKind, Ownership};
pub use vol::{ObjId, Vol};
