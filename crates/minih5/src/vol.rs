//! The Virtual Object Layer: the dispatch boundary every API call crosses.
//!
//! HDF5 1.12 routes every storage operation through a VOL connector chosen
//! at file-access time (or via environment variables). This module is that
//! boundary for `minih5`: the [`Vol`] trait is the function table, object
//! handles are opaque [`ObjId`]s minted by the connector, and the
//! thread-scoped registry ([`set_thread_vol`]) reproduces the
//! "set two environment variables, change no code" deployment mechanism —
//! in this reproduction a *task* is a thread, so the registry is
//! thread-local.

use std::cell::RefCell;
use std::sync::Arc;

use bytes::Bytes;

use crate::datatype::Datatype;
use crate::error::H5Result;
use crate::selection::Selection;
use crate::space::Dataspace;
use crate::tree::{ObjKind, Ownership};

/// Opaque object handle minted by a VOL connector (HDF5's `hid_t`).
pub type ObjId = u64;

/// A VOL connector: the complete set of object operations the public API
/// dispatches to.
///
/// Contract notes:
/// * Handles are connector-scoped; passing a handle to a different
///   connector is a usage error (connectors should fail with
///   `H5Error::InvalidHandle` when they can detect it).
/// * `dataset_write` receives the *packed* bytes of the selected elements
///   in row-major (run) order; `dataset_read` returns bytes in the same
///   order.
/// * Metadata operations (create/open) follow HDF5 parallel semantics:
///   in a parallel program they must be performed collectively, with the
///   same arguments in the same order, by every rank of the task.
pub trait Vol: Send + Sync {
    /// Connector name for diagnostics ("native", "lowfive-metadata", …).
    fn vol_name(&self) -> &'static str;

    fn file_create(&self, name: &str) -> H5Result<ObjId>;
    fn file_open(&self, name: &str) -> H5Result<ObjId>;
    /// Close a file. For write-mode files this is the commit point: the
    /// paper's consumers key off file close as the data-ready signal.
    fn file_close(&self, file: ObjId) -> H5Result<()>;

    fn group_create(&self, parent: ObjId, name: &str) -> H5Result<ObjId>;
    /// Open an existing object (group or dataset) by `/`-separated path
    /// relative to `parent`.
    fn open_path(&self, parent: ObjId, path: &str) -> H5Result<ObjId>;

    fn dataset_create(
        &self,
        parent: ObjId,
        name: &str,
        dtype: &Datatype,
        space: &Dataspace,
    ) -> H5Result<ObjId>;
    /// Create a dataset with chunked storage layout (required for
    /// extensible dataspaces on storage connectors). Connectors without
    /// chunked storage may treat this as a hint.
    fn dataset_create_chunked(
        &self,
        _parent: ObjId,
        _name: &str,
        _dtype: &Datatype,
        _space: &Dataspace,
        _chunk: &[u64],
    ) -> H5Result<ObjId> {
        Err(crate::error::H5Error::Vol("chunked datasets not supported by this connector".into()))
    }
    /// Grow an extensible dataset to `new_dims` (collective in parallel
    /// programs, like all metadata operations).
    fn dataset_extend(&self, _dset: ObjId, _new_dims: &[u64]) -> H5Result<()> {
        Err(crate::error::H5Error::Vol("dataset extension not supported by this connector".into()))
    }
    /// The chunk shape of a dataset, if it has chunked layout.
    fn dataset_chunk(&self, _dset: ObjId) -> H5Result<Option<Vec<u64>>> {
        Ok(None)
    }
    fn dataset_meta(&self, dset: ObjId) -> H5Result<(Datatype, Dataspace)>;
    fn dataset_write(
        &self,
        dset: ObjId,
        file_sel: &Selection,
        data: Bytes,
        ownership: Ownership,
    ) -> H5Result<()>;
    fn dataset_read(&self, dset: ObjId, file_sel: &Selection) -> H5Result<Bytes>;

    /// Read several selections of one dataset in a single call, returning
    /// one packed buffer per selection (in input order).
    ///
    /// The default is a serial loop over [`Vol::dataset_read`]; transports
    /// that can batch or overlap the underlying fetches (e.g. a
    /// distributed VOL issuing one RPC per peer for all selections at
    /// once) override this to do so. Implementations must return buffers
    /// byte-identical to the serial loop.
    fn dataset_read_multi(&self, dset: ObjId, file_sels: &[Selection]) -> H5Result<Vec<Bytes>> {
        file_sels.iter().map(|s| self.dataset_read(dset, s)).collect()
    }

    fn attr_write(&self, obj: ObjId, name: &str, dtype: &Datatype, data: Bytes) -> H5Result<()>;
    fn attr_read(&self, obj: ObjId, name: &str) -> H5Result<(Datatype, Bytes)>;

    /// List the children of a file or group.
    fn list(&self, obj: ObjId) -> H5Result<Vec<(String, ObjKind)>>;
    /// Kind of an object handle.
    fn obj_kind(&self, obj: ObjId) -> H5Result<ObjKind>;

    /// Release a non-file object handle. Default: no-op.
    fn object_close(&self, _obj: ObjId) -> H5Result<()> {
        Ok(())
    }
}

thread_local! {
    static THREAD_VOL: RefCell<Option<Arc<dyn Vol>>> = const { RefCell::new(None) };
}

/// Install `vol` as this thread's default connector and return a guard
/// that restores the previous one when dropped.
///
/// [`crate::H5::open_default`] consults this registry, so a workflow
/// orchestrator can redirect an unmodified task's I/O — the equivalent of
/// HDF5's `HDF5_VOL_CONNECTOR` / `HDF5_PLUGIN_PATH` environment variables.
pub fn set_thread_vol(vol: Arc<dyn Vol>) -> VolGuard {
    let prev = THREAD_VOL.with(|tv| tv.replace(Some(vol)));
    VolGuard { prev }
}

/// This thread's registered connector, if any.
pub fn thread_vol() -> Option<Arc<dyn Vol>> {
    THREAD_VOL.with(|tv| tv.borrow().clone())
}

/// Restores the previously registered connector on drop.
pub struct VolGuard {
    prev: Option<Arc<dyn Vol>>,
}

impl Drop for VolGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        THREAD_VOL.with(|tv| *tv.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeVol;

    #[test]
    fn thread_registry_scopes_and_restores() {
        assert!(thread_vol().is_none());
        let v1: Arc<dyn Vol> = Arc::new(NativeVol::serial());
        {
            let _g1 = set_thread_vol(Arc::clone(&v1));
            assert!(thread_vol().is_some());
            {
                let v2: Arc<dyn Vol> = Arc::new(NativeVol::serial());
                let _g2 = set_thread_vol(Arc::clone(&v2));
                assert!(Arc::ptr_eq(&thread_vol().unwrap(), &v2));
            }
            // Inner guard restored v1.
            assert!(Arc::ptr_eq(&thread_vol().unwrap(), &v1));
        }
        assert!(thread_vol().is_none());
    }

    #[test]
    fn registry_is_per_thread() {
        let v: Arc<dyn Vol> = Arc::new(NativeVol::serial());
        let _g = set_thread_vol(v);
        std::thread::spawn(|| assert!(thread_vol().is_none())).join().unwrap();
        assert!(thread_vol().is_some());
    }
}
