//! Little binary codec used by the native file format and by LowFive's
//! RPC messages.
//!
//! HDF5 has its own self-describing binary encodings for datatypes and
//! dataspaces; LowFive relies on HDF5's internal serialization routines for
//! those objects. This module plays that role here: a compact, versionless
//! little-endian encoding with length-prefixed strings and vectors, plus
//! `Encode`/`Decode` impls for the data-model types.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::{H5Error, H5Result};

/// Serializer over a growable byte buffer.
#[derive(Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.put_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Append raw bytes with no length prefix (caller knows the framing).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    pub fn put<T: Encode>(&mut self, v: &T) {
        v.encode(self);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Freeze and hand out everything written so far, leaving the writer
    /// empty and reusable. Frame builders that interleave contiguous
    /// header runs with borrowed payload parts flush the pending header
    /// through this before lending the next part.
    pub fn take(&mut self) -> Bytes {
        std::mem::take(&mut self.buf).freeze()
    }
}

/// Deserializer over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> H5Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(H5Error::Format(format!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> H5Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> H5Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn get_u64(&mut self) -> H5Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_f64(&mut self) -> H5Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_bytes(&mut self) -> H5Result<&'a [u8]> {
        let n = self.get_u64()? as usize;
        self.take(n)
    }

    pub fn get_str(&mut self) -> H5Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| H5Error::Format("invalid UTF-8".into()))
    }

    pub fn get_u64s(&mut self) -> H5Result<Vec<u64>> {
        let n = self.get_count(8)?;
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Read a `u64` element count and verify that `count * unit` bytes
    /// (the smallest possible encoding of that many elements) are
    /// actually present. Decoders must call this before sizing any
    /// allocation from a wire-declared count — a corrupt or hostile
    /// frame can otherwise declare petabytes and abort the process in
    /// `Vec::with_capacity` before the per-element reads ever fail.
    pub fn get_count(&mut self, unit: usize) -> H5Result<usize> {
        let n = self.get_u64()?;
        let need = n.checked_mul(unit.max(1) as u64);
        if need.is_none_or(|need| need > self.remaining() as u64) {
            return Err(H5Error::Format(format!(
                "declared count {n} (x{unit} bytes) exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    pub fn get<T: Decode>(&mut self) -> H5Result<T> {
        T::decode(self)
    }

    /// Bytes remaining past the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Types that can write themselves to a [`Writer`].
pub trait Encode {
    fn encode(&self, w: &mut Writer);

    /// Encode into a standalone buffer.
    fn to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish()
    }
}

/// Types that can read themselves from a [`Reader`].
pub trait Decode: Sized {
    fn decode(r: &mut Reader<'_>) -> H5Result<Self>;

    /// Decode from a standalone buffer (trailing bytes are an error).
    fn from_bytes(buf: &[u8]) -> H5Result<Self> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(H5Error::Format(format!("{} trailing bytes", r.remaining())));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD);
        w.put_u64(u64::MAX);
        w.put_f64(-1.5);
        w.put_str("héllo");
        w.put_u64s(&[1, 2, 3]);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap(), -1.5);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.put_u64(5);
        let b = w.finish();
        let mut r = Reader::new(&b[..4]);
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn get_bytes_respects_length_prefix() {
        let mut w = Writer::new();
        w.put_bytes(b"abc");
        w.put_u8(9);
        let b = w.finish();
        let mut r = Reader::new(&b);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_u8().unwrap(), 9);
    }
}
