//! Property-based test of the native file format: any tree of groups and
//! datasets with arbitrary (in-bounds) block writes survives a
//! write → close → open → read cycle byte-for-byte.

use minih5::{Dataspace, Datatype, Selection, H5};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct DsSpec {
    group: u8,
    dims: Vec<u64>,
    chunked: bool,
    /// Per write: (relative start per dim as fraction numerator 0..8,
    /// relative size numerator 1..8, fill byte).
    writes: Vec<(Vec<u64>, Vec<u64>, u8)>,
}

fn ds_spec() -> impl Strategy<Value = DsSpec> {
    (
        0u8..3,
        proptest::collection::vec(1u64..=10, 1..=3),
        any::<bool>(),
        proptest::collection::vec(
            (
                proptest::collection::vec(0u64..8, 3),
                proptest::collection::vec(1u64..=8, 3),
                any::<u8>(),
            ),
            0..4,
        ),
    )
        .prop_map(|(group, dims, chunked, writes)| DsSpec { group, dims, chunked, writes })
}

/// Convert the fractional write specs to in-bounds (start, size) boxes.
fn concrete_writes(spec: &DsSpec) -> Vec<(Vec<u64>, Vec<u64>, u8)> {
    spec.writes
        .iter()
        .map(|(snum, znum, fill)| {
            let mut start = Vec::new();
            let mut size = Vec::new();
            for (i, &d) in spec.dims.iter().enumerate() {
                let s = snum[i] % d;
                let z = 1 + znum[i] % (d - s).max(1);
                start.push(s);
                size.push(z.min(d - s));
            }
            (start, size, *fill)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn native_files_roundtrip(specs in proptest::collection::vec(ds_spec(), 1..5), case_id in 0u64..1_000_000) {
        let dir = std::env::temp_dir().join("minih5-proptest-format");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{case_id}.nh5"));
        let path = path.to_str().unwrap();

        let h5 = H5::native();
        let f = h5.create_file(path).unwrap();
        let groups = [
            f.create_group("g0").unwrap(),
            f.create_group("g1").unwrap(),
            f.create_group("g2").unwrap(),
        ];
        // Create datasets and mirror the expected contents in memory.
        let mut expected: Vec<(String, Vec<u8>)> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let name = format!("d{i}");
            let space = Dataspace::simple(&spec.dims);
            let parent = &groups[spec.group as usize];
            let d = if spec.chunked {
                let chunk: Vec<u64> = spec.dims.iter().map(|&x| x.div_ceil(2)).collect();
                parent.create_dataset_chunked(&name, Datatype::UInt8, space.clone(), &chunk)
            } else {
                parent.create_dataset(&name, Datatype::UInt8, space.clone())
            }
            .unwrap();
            let mut mirror = vec![0u8; space.npoints() as usize];
            for (start, size, fill) in concrete_writes(spec) {
                let sel = Selection::block(&start, &size);
                let n = sel.npoints(&space) as usize;
                d.write_selection(&sel, &vec![fill; n]).unwrap();
                // Mirror via the same run machinery (tested independently).
                for run in sel.runs(&space) {
                    for k in run.offset..run.offset + run.len {
                        mirror[k as usize] = fill;
                    }
                }
            }
            expected.push((format!("g{}/{name}", spec.group), mirror));
        }
        f.close().unwrap();

        // Reopen and verify every dataset in full and by random slab.
        let f = h5.open_file(path).unwrap();
        for (path_in_file, mirror) in &expected {
            let d = f.open_dataset(path_in_file).unwrap();
            let all: Vec<u8> = d.read_all().unwrap();
            prop_assert_eq!(&all, mirror, "dataset {}", path_in_file);
        }
        f.close().unwrap();
        let _ = std::fs::remove_file(path);
    }
}
