//! Chunked storage layout and extensible (appendable) datasets — the
//! HDF5 unlimited-dimension time-series pattern, through the native file
//! connector.

use minih5::space::UNLIMITED;
use minih5::{Dataspace, Datatype, H5Error, Selection, H5};

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("minih5-chunked-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_str().unwrap().to_string()
}

#[test]
fn chunked_roundtrip_fixed_shape() {
    let h5 = H5::native();
    let path = tmp("fixed.nh5");
    let f = h5.create_file(&path).unwrap();
    // 6x8 grid stored as 4x3 chunks (ragged coverage on both axes).
    let d = f
        .create_dataset_chunked("g", Datatype::UInt64, Dataspace::simple(&[6, 8]), &[4, 3])
        .unwrap();
    assert_eq!(d.chunk().unwrap(), Some(vec![4, 3]));
    let vals: Vec<u64> = (0..48).collect();
    d.write_all(&vals).unwrap();
    f.close().unwrap();

    let f = h5.open_file(&path).unwrap();
    let d = f.open_dataset("g").unwrap();
    assert_eq!(d.chunk().unwrap(), Some(vec![4, 3]));
    assert_eq!(d.read_all::<u64>().unwrap(), vals);
    // Cross-chunk hyperslab.
    let part: Vec<u64> = d.read_selection(&Selection::block(&[2, 1], &[3, 5])).unwrap();
    let expect: Vec<u64> = (2..5).flat_map(|r| (1..6).map(move |c| r * 8 + c)).collect();
    assert_eq!(part, expect);
    f.close().unwrap();
}

#[test]
fn append_grows_first_dimension() {
    let h5 = H5::native();
    let path = tmp("append.nh5");
    let f = h5.create_file(&path).unwrap();
    let d = f
        .create_dataset_chunked(
            "series",
            Datatype::Float64,
            Dataspace::extensible(&[2, 4], &[UNLIMITED, 4]),
            &[2, 4],
        )
        .unwrap();
    d.write_all(&[0.0f64, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
    // Append two more timesteps.
    d.extend(&[4, 4]).unwrap();
    let step: Vec<f64> = (8..16).map(|v| v as f64).collect();
    d.write_selection(&Selection::block(&[2, 0], &[2, 4]), &step).unwrap();
    let (_, sp) = d.meta().unwrap();
    assert_eq!(sp.dims(), &[4, 4]);
    f.close().unwrap();

    let f = h5.open_file(&path).unwrap();
    let d = f.open_dataset("series").unwrap();
    let all: Vec<f64> = d.read_all().unwrap();
    assert_eq!(all, (0..16).map(|v| v as f64).collect::<Vec<_>>());
    f.close().unwrap();
}

#[test]
fn repeated_extension_many_chunks() {
    let h5 = H5::native();
    let path = tmp("grow.nh5");
    let f = h5.create_file(&path).unwrap();
    let d = f
        .create_dataset_chunked(
            "log",
            Datatype::UInt32,
            Dataspace::extensible(&[0], &[UNLIMITED]),
            &[7], // deliberately unaligned chunk size
        )
        .unwrap();
    let mut written = 0u64;
    for round in 0..10u32 {
        let add = 5 + (round as u64 % 3);
        d.extend(&[written + add]).unwrap();
        let vals: Vec<u32> = (written..written + add).map(|v| v as u32).collect();
        d.write_selection(&Selection::block(&[written], &[add]), &vals).unwrap();
        written += add;
    }
    f.close().unwrap();

    let f = h5.open_file(&path).unwrap();
    let d = f.open_dataset("log").unwrap();
    let all: Vec<u32> = d.read_all().unwrap();
    assert_eq!(all.len() as u64, written);
    assert!(all.iter().enumerate().all(|(i, &v)| v == i as u32));
    f.close().unwrap();
}

#[test]
fn unwritten_chunks_read_as_fill() {
    let h5 = H5::native();
    let path = tmp("sparse.nh5");
    let f = h5.create_file(&path).unwrap();
    let d = f.create_dataset_chunked("s", Datatype::UInt8, Dataspace::simple(&[8]), &[4]).unwrap();
    d.write_selection(&Selection::block(&[5], &[2]), &[9u8, 9]).unwrap();
    f.close().unwrap();
    let f = h5.open_file(&path).unwrap();
    let d = f.open_dataset("s").unwrap();
    // Note: dense chunk allocation zero-fills on ext4/tmpfs via sparse
    // writes — untouched bytes read back as 0.
    assert_eq!(d.read_all::<u8>().unwrap(), vec![0, 0, 0, 0, 0, 9, 9, 0]);
    f.close().unwrap();
}

#[test]
fn extension_errors() {
    let h5 = H5::native();
    let path = tmp("errors.nh5");
    let f = h5.create_file(&path).unwrap();
    // Contiguous dataset cannot extend.
    let c = f.create_dataset("c", Datatype::UInt8, Dataspace::extensible(&[2], &[8])).unwrap();
    assert!(matches!(c.extend(&[4]), Err(H5Error::Vol(_))));
    // Fixed-shape chunked dataset cannot extend either.
    let k = f.create_dataset_chunked("k", Datatype::UInt8, Dataspace::simple(&[4]), &[2]).unwrap();
    assert!(matches!(k.extend(&[8]), Err(H5Error::ShapeMismatch(_))));
    // Bad chunk shape.
    assert!(f
        .create_dataset_chunked("bad", Datatype::UInt8, Dataspace::simple(&[4]), &[2, 2])
        .is_err());
    assert!(f
        .create_dataset_chunked("bad0", Datatype::UInt8, Dataspace::simple(&[4]), &[0])
        .is_err());
    f.close().unwrap();
}

#[test]
fn parallel_chunked_writes_shared_file() {
    use simmpi::World;
    let path = tmp("parallel.nh5");
    let path2 = path.clone();
    World::run(4, move |c| {
        use std::sync::Arc;
        let cb = c.clone();
        let vol: Arc<dyn minih5::Vol> =
            Arc::new(minih5::native::NativeVol::parallel(c.rank(), move || cb.barrier()));
        let h5 = H5::with_vol(vol);
        let f = h5.create_file(&path2).unwrap();
        // Collective metadata: every rank creates identically.
        let d = f
            .create_dataset_chunked("g", Datatype::UInt64, Dataspace::simple(&[8, 8]), &[3, 8])
            .unwrap();
        // Each rank writes its 2-row slab (crossing chunk boundaries).
        let r0 = c.rank() as u64 * 2;
        let vals: Vec<u64> = (0..16).map(|i| r0 * 8 + i).collect();
        d.write_selection(&Selection::block(&[r0, 0], &[2, 8]), &vals).unwrap();
        f.close().unwrap();
    });
    let h5 = H5::native();
    let f = h5.open_file(&path).unwrap();
    let d = f.open_dataset("g").unwrap();
    assert_eq!(d.read_all::<u64>().unwrap(), (0..64).collect::<Vec<u64>>());
    f.close().unwrap();
}
