//! Property-based tests of the selection algebra — the invariants the
//! whole transport stack leans on.

use minih5::codec::{Decode, Encode};
use minih5::selection::{overlap_runs, pack, unpack, Run};
use minih5::{Dataspace, Selection};
use proptest::prelude::*;

/// A random dataspace of rank 1–3 with small extents.
fn space_strategy() -> impl Strategy<Value = Dataspace> {
    proptest::collection::vec(1u64..=9, 1..=3).prop_map(|d| Dataspace::simple(&d))
}

/// A random valid hyperslab within the space (may select nothing).
fn slab_strategy(space: Dataspace) -> impl Strategy<Value = (Dataspace, Selection)> {
    let dims = space.dims().to_vec();
    let per_dim: Vec<_> = dims
        .iter()
        .map(|&d| {
            // start < d; stride 1..=d; block ≤ stride; count limited to fit.
            (0..d, 1..=d).prop_flat_map(move |(start, stride)| {
                let max_block = stride.min(d - start);
                (1..=max_block).prop_flat_map(move |block| {
                    let span = d - start;
                    // count blocks fit: start + (count-1)*stride + block ≤ d
                    let max_count = 1 + (span - block) / stride;
                    (1..=max_count).prop_map(move |count| (start, stride, count, block))
                })
            })
        })
        .collect();
    (Just(space), per_dim).prop_map(|(space, params)| {
        let start: Vec<u64> = params.iter().map(|p| p.0).collect();
        let stride: Vec<u64> = params.iter().map(|p| p.1).collect();
        let count: Vec<u64> = params.iter().map(|p| p.2).collect();
        let block: Vec<u64> = params.iter().map(|p| p.3).collect();
        (space, Selection::strided(&start, &stride, &count, &block))
    })
}

fn space_and_slab() -> impl Strategy<Value = (Dataspace, Selection)> {
    space_strategy().prop_flat_map(slab_strategy)
}

/// Brute-force membership: which linear offsets does a selection cover?
fn element_set(sel: &Selection, space: &Dataspace) -> Vec<u64> {
    let mut out: Vec<u64> =
        sel.runs(space).iter().flat_map(|r| r.offset..r.offset + r.len).collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Hyperslabs validate, and their runs are sorted, disjoint, maximal
    /// (no two adjacent runs touch), and cover exactly npoints elements.
    #[test]
    fn runs_are_canonical((space, sel) in space_and_slab()) {
        prop_assert!(sel.validate(&space).is_ok());
        let runs = sel.runs(&space);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, sel.npoints(&space));
        for w in runs.windows(2) {
            prop_assert!(w[0].offset + w[0].len < w[1].offset,
                "runs must be sorted, disjoint, and merged: {:?}", runs);
        }
        for r in &runs {
            prop_assert!(r.len > 0);
            prop_assert!(r.offset + r.len <= space.npoints());
        }
    }

    /// The bounding box contains every selected element.
    #[test]
    fn bbox_contains_all_elements((space, sel) in space_and_slab()) {
        let bb = sel.bbox(&space);
        for off in element_set(&sel, &space) {
            let coord = space.delinearize(off);
            prop_assert!(bb.contains(&coord), "{coord:?} outside {bb:?}");
        }
        prop_assert!(bb.npoints() >= sel.npoints(&space));
    }

    /// pack → unpack is the identity on the selected elements and never
    /// touches unselected ones.
    #[test]
    fn pack_unpack_roundtrip((space, sel) in space_and_slab()) {
        let n = space.npoints() as usize;
        let src: Vec<u8> = (0..n).map(|i| (i % 251) as u8 + 1).collect();
        let packed = pack(&sel, &space, 1, &src);
        prop_assert_eq!(packed.len() as u64, sel.npoints(&space));
        let mut dst = vec![0u8; n];
        unpack(&sel, &space, 1, &packed, &mut dst);
        let selected = element_set(&sel, &space);
        for i in 0..n {
            if selected.binary_search(&(i as u64)).is_ok() {
                prop_assert_eq!(dst[i], src[i]);
            } else {
                prop_assert_eq!(dst[i], 0);
            }
        }
    }

    /// overlap_runs equals brute-force set intersection, with correct
    /// packed offsets on both sides.
    #[test]
    fn overlap_matches_bruteforce(
        (space, a) in space_and_slab(),
        seed in 0u64..1000,
    ) {
        // Derive a second selection from the seed: a block offset inside
        // the same space.
        let dims = space.dims().to_vec();
        let start: Vec<u64> = dims.iter().enumerate()
            .map(|(i, &d)| (seed >> (i * 3)) % d)
            .collect();
        let size: Vec<u64> = dims.iter().zip(&start)
            .map(|(&d, &s)| 1 + (seed % (d - s)))
            .collect();
        let b = Selection::block(&start, &size);
        let ra = a.runs(&space);
        let rb = b.runs(&space);
        let ov = overlap_runs(&ra, &rb);
        // Brute force intersection.
        let sa = element_set(&a, &space);
        let sb = element_set(&b, &space);
        let expected: Vec<u64> =
            sa.iter().copied().filter(|x| sb.binary_search(x).is_ok()).collect();
        let got: Vec<u64> = ov.iter().flat_map(|o| o.offset..o.offset + o.len).collect();
        prop_assert_eq!(&got, &expected);
        // Packed-offset consistency: element k of the overlap is element
        // a_off+i of A's packed order and b_off+i of B's.
        let pos = |set: &[u64], x: u64| set.binary_search(&x).expect("member") as u64;
        for o in &ov {
            for i in 0..o.len {
                let x = o.offset + i;
                prop_assert_eq!(pos(&sa, x), o.a_off + i);
                prop_assert_eq!(pos(&sb, x), o.b_off + i);
            }
        }
    }

    /// Selection and dataspace codecs roundtrip.
    #[test]
    fn codec_roundtrip((space, sel) in space_and_slab()) {
        let b = sel.to_bytes();
        prop_assert_eq!(Selection::from_bytes(&b).unwrap(), sel);
        let sb = space.to_bytes();
        prop_assert_eq!(Dataspace::from_bytes(&sb).unwrap(), space);
    }

    /// Point selections canonicalize: runs sorted/merged even from
    /// shuffled, duplicated points.
    #[test]
    fn point_selections_canonicalize(
        dims in proptest::collection::vec(1u64..=6, 1..=3),
        raw in proptest::collection::vec(0u64..1000, 0..40),
    ) {
        let space = Dataspace::simple(&dims);
        let rank = dims.len();
        let coords: Vec<u64> = raw.iter()
            .flat_map(|&r| {
                dims.iter().enumerate().map(move |(i, &d)| (r >> (i * 5)) % d)
            })
            .collect();
        let sel = Selection::Points { rank, coords };
        prop_assert!(sel.validate(&space).is_ok());
        let runs = sel.runs(&space);
        for w in runs.windows(2) {
            prop_assert!(w[0].offset + w[0].len < w[1].offset);
        }
        // Dedup means npoints(runs) ≤ raw point count.
        let total: u64 = runs.iter().map(|r| r.len).sum();
        prop_assert!(total <= raw.len() as u64);
    }
}

#[test]
fn overlap_of_identical_selection_is_identity() {
    let space = Dataspace::simple(&[7, 5]);
    let sel = Selection::strided(&[1, 0], &[2, 2], &[3, 2], &[1, 2]);
    let runs = sel.runs(&space);
    let ov = overlap_runs(&runs, &runs);
    let flat: Vec<Run> = ov.iter().map(|o| Run { offset: o.offset, len: o.len }).collect();
    assert_eq!(flat, runs);
    assert!(ov.iter().all(|o| o.a_off == o.b_off));
}
