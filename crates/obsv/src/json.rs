//! Minimal JSON value model, writer, and parser.
//!
//! The workspace is built offline against vendored shims, so there is no
//! serde. The exporters need only a small, dependable subset: finite
//! numbers, strings, arrays, and objects with preserved key order (order
//! preservation is what makes the round-trip check in
//! [`crate::validate`] exact).

use std::fmt::Write as _;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// All numbers are f64. Every quantity the exporters emit (nanosecond
    /// timestamps within a run, byte counts, call ids) fits losslessly in
    /// the 53-bit mantissa.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// Insertion-ordered; duplicate keys are not produced by the writer.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructors used by the exporters.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A float number value.
pub fn num(n: f64) -> Value {
    Value::Num(n)
}

/// An integer number value (lossless up to 2^53).
pub fn int(n: u64) -> Value {
    Value::Num(n as f64)
}

/// A string value.
pub fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the exporters never produce them, but be
        // defensive rather than emitting an unparseable token.
        out.push_str("null");
    } else {
        // Rust's shortest-round-trip float formatting guarantees
        // `parse(format(n)) == n`, which the validator relies on.
        let _ = write!(out, "{n}");
    }
}

fn write_str(text: &str, out: &mut String) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a descriptive error with a byte offset on
/// malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not emitted by the writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance by whole UTF-8 characters.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = obj(vec![
            ("a", int(7)),
            ("b", Value::Arr(vec![num(1.5), s("x\"y\n"), Value::Null, Value::Bool(true)])),
            ("c", obj(vec![("empty", Value::Arr(vec![]))])),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).expect("parse"), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.0, 0.1, 1234.5678, 1e-9, 9.007199254740991e15] {
            let text = Value::Num(x).to_json();
            assert_eq!(parse(&text).expect("parse"), Value::Num(x));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"k\" : [ 1 , 2 ] } ").expect("parse");
        assert_eq!(v.get("k").and_then(Value::as_arr).map(<[Value]>::len), Some(2));
    }
}
