//! Fixed-capacity event ring with drop-oldest overflow.
//!
//! One ring per recorder lane, written only by the owning thread. Capacity
//! is allocated up front; a full ring overwrites the oldest slot and bumps
//! a `dropped` count rather than allocating or corrupting the trace — the
//! exporter later discards `Exit` events whose `Enter` fell off the front.

/// Whether an event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The span opened.
    Enter,
    /// The span closed.
    Exit,
}

/// One recorded span edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Enter or exit.
    pub kind: EventKind,
    /// The transport phase the span belongs to.
    pub phase: crate::Phase,
    /// Free-form correlation id (RPC call id, task id, …); 0 when unused.
    pub tag: u64,
    /// Nanoseconds since the process-wide clock origin.
    pub t_ns: u64,
}

/// The fixed-capacity, drop-oldest span-event buffer of one lane.
#[derive(Debug)]
pub struct EventRing {
    slots: Vec<Event>,
    cap: usize,
    /// Monotonic count of events ever pushed; `head % cap` is the next
    /// write position once the ring has wrapped.
    head: u64,
}

impl EventRing {
    /// A ring holding at most `cap` events (allocated up front).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        EventRing { slots: Vec::with_capacity(cap), cap, head: 0 }
    }

    /// Record one event; O(1), no allocation after construction.
    pub fn push(&mut self, event: Event) {
        if self.slots.len() < self.cap {
            self.slots.push(event);
        } else {
            let idx = (self.head % self.cap as u64) as usize;
            self.slots[idx] = event;
        }
        self.head += 1;
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.head.saturating_sub(self.cap as u64)
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head
    }

    /// Surviving events, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        if self.head <= self.cap as u64 {
            self.slots.clone()
        } else {
            let split = (self.head % self.cap as u64) as usize;
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.slots[split..]);
            out.extend_from_slice(&self.slots[..split]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn ev(t: u64) -> Event {
        Event { kind: EventKind::Enter, phase: Phase::Index, tag: t, t_ns: t }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = EventRing::new(4);
        for t in 0..3 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_vec().iter().map(|e| e.t_ns).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn overflow_drops_oldest_in_order() {
        let mut r = EventRing::new(4);
        for t in 0..10 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.pushed(), 10);
        assert_eq!(r.to_vec().iter().map(|e| e.t_ns).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn exact_capacity_boundary() {
        let mut r = EventRing::new(3);
        for t in 0..3 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_vec().len(), 3);
        r.push(ev(3));
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.to_vec().iter().map(|e| e.t_ns).collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
