//! Log2-bucket histograms for latencies and sizes.
//!
//! Recording is one atomic add into a power-of-two bucket plus count/sum
//! totals — no allocation, no locks. Bucket `0` holds the value 0; bucket
//! `i ≥ 1` holds values in `[2^(i-1), 2^i)`. 65 buckets cover the full
//! `u64` range.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket.
pub fn bucket_lo(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of a bucket.
pub fn bucket_hi(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Shared-writer histogram used on the hot path.
#[derive(Debug)]
pub struct AtomicHist {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHist {
    fn default() -> Self {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicHist {
    /// Record one value: three relaxed atomic adds.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copy the current totals into a plain-data snapshot.
    pub fn snapshot(&self) -> HistData {
        HistData {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot; merging snapshots is associative, commutative, and
/// lossless (verified by proptest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistData {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping, like the atomic writer).
    pub sum: u64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData { buckets: [0; NUM_BUCKETS], count: 0, sum: 0 }
    }
}

impl HistData {
    /// Record one value into the plain-data form.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        // Wrapping, matching the relaxed `fetch_add` in `AtomicHist`: a
        // pathological sum overflow must not poison merging.
        self.sum = self.sum.wrapping_add(value);
    }

    /// Fold `other`'s observations into this snapshot (lossless).
    pub fn merge(&mut self, other: &HistData) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Has nothing been recorded?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, c)| **c > 0)
            .map(|(i, _)| bucket_hi(i))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo bound of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i, "hi bound of bucket {i}");
        }
    }

    #[test]
    fn atomic_and_plain_agree() {
        let a = AtomicHist::default();
        let mut p = HistData::default();
        for v in [0u64, 1, 7, 1024, 99999] {
            a.record(v);
            p.record(v);
        }
        assert_eq!(a.snapshot(), p);
        assert_eq!(p.count, 5);
        assert_eq!(p.sum, 101031);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HistData::default();
        let mut b = HistData::default();
        a.record(3);
        b.record(300);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 303);
        assert_eq!(a.max_bound(), 511);
    }
}
