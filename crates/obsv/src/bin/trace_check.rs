//! CLI validator for exported Chrome traces.
//!
//! Usage: `trace_check [--require-ranks N] TRACE.json [MORE.json ...]`
//!
//! Exits non-zero if any trace fails structural validation (parse,
//! round-trip, non-negative durations, strict per-track nesting) or
//! declares fewer than `N` ranks carrying spans. CI runs this against the
//! trace emitted by `examples/streaming_profile.rs`.

use std::process::ExitCode;

use obsv::validate::validate_chrome_trace;

fn main() -> ExitCode {
    let mut require_ranks: usize = 1;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-ranks" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--require-ranks needs an integer");
                    return ExitCode::from(2);
                };
                require_ranks = n;
            }
            "--help" | "-h" => {
                eprintln!("usage: trace_check [--require-ranks N] TRACE.json ...");
                return ExitCode::SUCCESS;
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: trace_check [--require-ranks N] TRACE.json ...");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_chrome_trace(&text) {
            Ok(summary) => {
                let n = summary.ranks_with_spans.len();
                if n < require_ranks {
                    eprintln!("{path}: only {n} rank(s) carry spans, required {require_ranks}");
                    failed = true;
                } else {
                    println!(
                        "{path}: ok — {} spans across {} rank(s), {} declared",
                        summary.spans,
                        n,
                        summary.ranks_declared.len()
                    );
                }
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
