//! Exporters: Chrome `trace_event` JSON and flat metrics JSON.
//!
//! The Chrome trace uses `"X"` (complete) events with microsecond
//! `ts`/`dur`, one `pid` for the whole run and one `tid` per lane, plus
//! `"M"` metadata events naming each track `rank N`. Exact nanosecond
//! timestamps ride along in `args` so validators need no float epsilon.
//! The metrics document is a stable, flat schema the bench harness parses
//! next to its CSV results.

use crate::json::{int, num, obj, s, Value};
use crate::ring::{Event, EventKind};
use crate::{Ctr, Hist, Phase, Report};

/// Schema tag stamped into every metrics document.
pub const METRICS_SCHEMA: &str = "lowfive-obsv-metrics-v1";

/// A paired span reconstructed from a lane's event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// The transport phase the span belongs to.
    pub phase: Phase,
    /// Correlation id carried over from the span's events.
    pub tag: u64,
    /// Span open time, nanoseconds since the clock origin.
    pub start_ns: u64,
    /// Span close time, nanoseconds since the clock origin.
    pub end_ns: u64,
}

/// Pair enter/exit events from one lane, oldest first.
///
/// RAII guards make spans strictly nested per lane, so a stack suffices.
/// Ring overflow drops only the *oldest* events, which leaves two kinds of
/// damage, both handled conservatively: an `Exit` with no surviving
/// `Enter` is discarded, and a span still open at snapshot time is closed
/// at the lane's last event timestamp.
pub fn pair_spans(events: &[Event]) -> Vec<SpanRec> {
    let mut out = Vec::new();
    let mut stack: Vec<(Phase, u64, u64)> = Vec::new();
    let last_t = events.last().map(|e| e.t_ns).unwrap_or(0);
    for e in events {
        match e.kind {
            EventKind::Enter => stack.push((e.phase, e.tag, e.t_ns)),
            EventKind::Exit => match stack.last() {
                Some(&(phase, tag, start_ns)) if phase == e.phase && tag == e.tag => {
                    stack.pop();
                    out.push(SpanRec { phase, tag, start_ns, end_ns: e.t_ns });
                }
                // Matching enter was dropped by ring overflow.
                _ => {}
            },
        }
    }
    for (phase, tag, start_ns) in stack {
        out.push(SpanRec { phase, tag, start_ns, end_ns: last_t.max(start_ns) });
    }
    out.sort_by_key(|sp| (sp.start_ns, std::cmp::Reverse(sp.end_ns)));
    out
}

/// Track id for a lane: ranks stay readable in Perfetto's thread list and
/// helper lanes sit next to their rank.
fn lane_tid(rank: usize, lane: usize) -> u64 {
    (rank as u64) * 256 + (lane as u64 % 256)
}

impl Report {
    /// Chrome `trace_event` JSON, loadable in `chrome://tracing`/Perfetto.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        events.push(obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", int(0)),
            ("args", obj(vec![("name", s("lowfive"))])),
        ]));
        for lane in &self.lanes {
            let tid = lane_tid(lane.rank, lane.lane);
            let label = if lane.lane == 0 {
                format!("rank {}", lane.rank)
            } else {
                format!("rank {} aux{}", lane.rank, lane.lane)
            };
            events.push(obj(vec![
                ("name", s("thread_name")),
                ("ph", s("M")),
                ("pid", int(0)),
                ("tid", int(tid)),
                (
                    "args",
                    obj(vec![
                        ("name", s(&label)),
                        ("rank", int(lane.rank as u64)),
                        ("lane", int(lane.lane as u64)),
                    ]),
                ),
            ]));
            for sp in pair_spans(&lane.events) {
                let dur_ns = sp.end_ns - sp.start_ns;
                events.push(obj(vec![
                    ("name", s(sp.phase.name())),
                    ("cat", s("obsv")),
                    ("ph", s("X")),
                    ("pid", int(0)),
                    ("tid", int(tid)),
                    ("ts", num(sp.start_ns as f64 / 1000.0)),
                    ("dur", num(dur_ns as f64 / 1000.0)),
                    (
                        "args",
                        obj(vec![
                            ("tag", int(sp.tag)),
                            ("ts_ns", int(sp.start_ns)),
                            ("dur_ns", int(dur_ns)),
                        ]),
                    ),
                ]));
            }
        }
        obj(vec![("displayTimeUnit", s("ms")), ("traceEvents", Value::Arr(events))]).to_json()
    }

    /// Flat metrics JSON: counters, histograms, per-phase seconds, and a
    /// per-rank breakdown.
    pub fn metrics_json(&self) -> String {
        let counters = Value::Obj(
            Ctr::ALL.iter().map(|&c| (c.name().to_string(), int(self.counter(c)))).collect(),
        );

        let histograms = Value::Obj(
            Hist::ALL
                .iter()
                .map(|&h| {
                    let data = self.hist(h);
                    let buckets: Vec<Value> = data
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, count)| **count > 0)
                        .map(|(i, count)| {
                            obj(vec![
                                ("lo", int(crate::bucket_lo(i))),
                                ("hi", int(crate::bucket_hi(i))),
                                ("count", int(*count)),
                            ])
                        })
                        .collect();
                    (
                        h.name().to_string(),
                        obj(vec![
                            ("count", int(data.count)),
                            ("sum", int(data.sum)),
                            ("mean", num(data.mean())),
                            ("buckets", Value::Arr(buckets)),
                        ]),
                    )
                })
                .collect(),
        );

        let phases = phase_obj(&self.phase_totals());

        let ranks: Vec<Value> = self
            .ranks()
            .into_iter()
            .map(|rank| {
                let sub = Report {
                    lanes: self.lanes.iter().filter(|l| l.rank == rank).cloned().collect(),
                };
                obj(vec![
                    ("rank", int(rank as u64)),
                    ("lanes", int(sub.lanes.len() as u64)),
                    ("events", int(sub.lanes.iter().map(|l| l.events.len() as u64).sum::<u64>())),
                    ("dropped", int(sub.dropped())),
                    ("phases", phase_obj(&sub.phase_totals())),
                ])
            })
            .collect();

        obj(vec![
            ("schema", s(METRICS_SCHEMA)),
            ("dropped_events", int(self.dropped())),
            ("counters", counters),
            ("histograms", histograms),
            ("phases", phases),
            ("ranks", Value::Arr(ranks)),
        ])
        .to_json()
    }
}

fn phase_obj(totals: &[crate::PhaseTotal]) -> Value {
    Value::Obj(
        totals
            .iter()
            .filter(|t| t.spans > 0)
            .map(|t| {
                (
                    t.phase.name().to_string(),
                    obj(vec![("spans", int(t.spans)), ("seconds", num(t.seconds))]),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, json, span, span_tagged, Registry};

    #[test]
    fn pairing_handles_nesting_and_truncation() {
        let mk = |kind, phase, tag, t_ns| Event { kind, phase, tag, t_ns };
        // X with dropped enter, then a full nested pair, then an unclosed
        // enter.
        let events = [
            mk(EventKind::Exit, Phase::Serve, 0, 5),
            mk(EventKind::Enter, Phase::Query, 1, 10),
            mk(EventKind::Enter, Phase::Fetch, 2, 11),
            mk(EventKind::Exit, Phase::Fetch, 2, 15),
            mk(EventKind::Exit, Phase::Query, 1, 20),
            mk(EventKind::Enter, Phase::Index, 3, 25),
        ];
        let spans = pair_spans(&events);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0], SpanRec { phase: Phase::Query, tag: 1, start_ns: 10, end_ns: 20 });
        assert_eq!(spans[1], SpanRec { phase: Phase::Fetch, tag: 2, start_ns: 11, end_ns: 15 });
        // Unclosed enter closed at the lane's last timestamp.
        assert_eq!(spans[2], SpanRec { phase: Phase::Index, tag: 3, start_ns: 25, end_ns: 25 });
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "needs event recording")]
    fn chrome_trace_parses_and_names_ranks() {
        let reg = Registry::new();
        {
            let _g = install(reg.recorder(1));
            let _sp = span_tagged(Phase::RpcCall, 42);
        }
        let text = reg.report().chrome_trace();
        let doc = json::parse(&text).expect("valid json");
        let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
        assert!(events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("args").and_then(|a| a.get("rank")).and_then(Value::as_u64) == Some(1)));
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("one span");
        assert_eq!(x.get("name").and_then(Value::as_str), Some("rpc_call"));
        assert_eq!(x.get("args").and_then(|a| a.get("tag")).and_then(Value::as_u64), Some(42));
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "needs event recording")]
    fn metrics_json_has_schema_and_counters() {
        let reg = Registry::new();
        {
            let _g = install(reg.recorder(0));
            crate::counter_add(Ctr::MsgsSent, 3);
            crate::hist_record(Hist::MsgSize, 128);
            let _sp = span(Phase::Index);
        }
        let doc = json::parse(&reg.report().metrics_json()).expect("valid json");
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some(METRICS_SCHEMA));
        let msgs = doc.get("counters").and_then(|c| c.get("msgs_sent")).and_then(Value::as_u64);
        assert_eq!(msgs, Some(3));
        let size = doc.get("histograms").and_then(|h| h.get("msg_size")).expect("msg_size");
        assert_eq!(size.get("sum").and_then(Value::as_u64), Some(128));
        assert!(doc.get("phases").and_then(|p| p.get("index")).is_some());
    }
}
