//! Structural validation of exported Chrome traces.
//!
//! Shared by the e2e test suite and the `trace_check` CLI the CI job runs:
//! the trace must survive a parse → serialize → parse round trip, every
//! complete event needs a non-negative duration, spans must be strictly
//! nested per track, and each declared rank should carry spans.

use crate::json::{self, Value};

/// What a valid trace contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Ranks declared via `thread_name` metadata, ascending.
    pub ranks_declared: Vec<usize>,
    /// Ranks that own at least one complete (`"X"`) event, ascending.
    pub ranks_with_spans: Vec<usize>,
    /// Total complete events.
    pub spans: usize,
}

/// Validate `text` as a Chrome `trace_event` document produced by
/// [`crate::Report::chrome_trace`]. Returns a summary or the first
/// structural violation found.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text).map_err(|e| format!("trace does not parse: {e}"))?;

    // Round trip: serializing the parsed value must reproduce an
    // equivalent document (exercises writer/parser agreement the same way
    // a serde round-trip test would).
    let again = json::parse(&doc.to_json()).map_err(|e| format!("round-trip parse failed: {e}"))?;
    if again != doc {
        return Err("round-trip changed the document".to_string());
    }

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;

    let mut ranks_declared: Vec<usize> = Vec::new();
    // (tid, rank) for every declared track.
    let mut track_ranks: Vec<(u64, usize)> = Vec::new();
    // Per-tid list of (ts_ns, dur_ns).
    let mut per_tid: Vec<(u64, Vec<(u64, u64)>)> = Vec::new();
    let mut spans = 0usize;

    for (i, e) in events.iter().enumerate() {
        let ph =
            e.get("ph").and_then(Value::as_str).ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "M" => {
                if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                    let args = e.get("args").ok_or_else(|| format!("event {i}: missing args"))?;
                    let rank = args
                        .get("rank")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("event {i}: thread_name without rank"))?
                        as usize;
                    let tid = e
                        .get("tid")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("event {i}: thread_name without tid"))?;
                    ranks_declared.push(rank);
                    track_ranks.push((tid, rank));
                }
            }
            "X" => {
                let tid = e
                    .get("tid")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X without tid"))?;
                let ts = e
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: X without ts"))?;
                let dur = e
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur ({ts}, {dur})"));
                }
                let args = e.get("args").ok_or_else(|| format!("event {i}: X without args"))?;
                let ts_ns = args
                    .get("ts_ns")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X without integer ts_ns"))?;
                let dur_ns = args
                    .get("dur_ns")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X without integer dur_ns"))?;
                match per_tid.iter_mut().find(|(t, _)| *t == tid) {
                    Some((_, list)) => list.push((ts_ns, dur_ns)),
                    None => per_tid.push((tid, vec![(ts_ns, dur_ns)])),
                }
                spans += 1;
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }

    // Strict nesting per track: sorted by start (longest first on ties),
    // every span must lie entirely within whichever span encloses it.
    for (tid, list) in per_tid.iter_mut() {
        let mut sorted = list.clone();
        sorted.sort_by_key(|&(ts, dur)| (ts, std::cmp::Reverse(dur)));
        let mut stack: Vec<u64> = Vec::new(); // end timestamps
        for (ts, dur) in sorted {
            let end = ts + dur;
            while matches!(stack.last(), Some(&top) if top <= ts) {
                stack.pop();
            }
            if let Some(&top) = stack.last() {
                if end > top {
                    return Err(format!(
                        "track {tid}: span [{ts}, {end}) overlaps enclosing span ending at {top}"
                    ));
                }
            }
            stack.push(end);
        }
    }

    let mut ranks_with_spans: Vec<usize> = per_tid
        .iter()
        .filter(|(_, list)| !list.is_empty())
        .filter_map(|(tid, _)| track_ranks.iter().find(|(t, _)| t == tid).map(|(_, r)| *r))
        .collect();
    ranks_with_spans.sort_unstable();
    ranks_with_spans.dedup();
    ranks_declared.sort_unstable();
    ranks_declared.dedup();

    Ok(TraceSummary { ranks_declared, ranks_with_spans, spans })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, span, span_tagged, Phase, Registry};

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "needs event recording")]
    fn validates_a_real_trace() {
        let reg = Registry::new();
        for rank in 0..3 {
            let _g = install(reg.recorder(rank));
            let outer = span(Phase::Query);
            let inner = span_tagged(Phase::Fetch, rank as u64);
            drop(inner);
            drop(outer);
        }
        let summary = validate_chrome_trace(&reg.report().chrome_trace()).expect("valid");
        assert_eq!(summary.ranks_declared, vec![0, 1, 2]);
        assert_eq!(summary.ranks_with_spans, vec![0, 1, 2]);
        assert_eq!(summary.spans, 6);
    }

    #[test]
    fn rejects_overlapping_spans() {
        // Two spans on one track that overlap without nesting.
        let text = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0","rank":0,"lane":0}},
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":10,"args":{"tag":0,"ts_ns":0,"dur_ns":10000}},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":5,"dur":10,"args":{"tag":0,"ts_ns":5000,"dur_ns":10000}}
        ]}"#;
        let err = validate_chrome_trace(text).expect_err("overlap must fail");
        assert!(err.contains("overlaps"), "got: {err}");
    }

    #[test]
    fn rejects_garbage_and_missing_fields() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let no_dur = r#"{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"ts":1,"args":{}}]}"#;
        assert!(validate_chrome_trace(no_dur).is_err());
    }

    #[test]
    fn sibling_spans_may_touch() {
        let text = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0","rank":0,"lane":0}},
            {"name":"p","ph":"X","pid":0,"tid":0,"ts":0,"dur":20,"args":{"tag":0,"ts_ns":0,"dur_ns":20000}},
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0,"dur":10,"args":{"tag":0,"ts_ns":0,"dur_ns":10000}},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":10,"dur":10,"args":{"tag":0,"ts_ns":10000,"dur_ns":10000}}
        ]}"#;
        let summary = validate_chrome_trace(text).expect("touching siblings are nested");
        assert_eq!(summary.spans, 3);
    }
}
