//! Workspace observability: per-rank spans, counters, and histograms with
//! Chrome-trace export.
//!
//! The paper's evaluation (§V-C) depends on attributing time to transport
//! phases — index, serve, query, redirect, fetch — per rank. This crate is
//! the one clock and event model every layer shares:
//!
//! * [`span`] / [`span_tagged`] record typed enter/exit pairs into a
//!   fixed-capacity per-lane ring ([`ring::EventRing`]) — RAII guards make
//!   spans strictly nested per lane by construction;
//! * [`counter_add`] bumps one of a fixed set of monotonic counters
//!   ([`Ctr`]) with a relaxed atomic add;
//! * [`hist_record`] feeds log2-bucket histograms ([`Hist`]) for message
//!   latencies and sizes;
//! * a [`Registry`] hands each rank thread a [`Recorder`] lane and merges
//!   everything into a [`Report`] after `World` join;
//! * [`Report::chrome_trace`] emits Chrome `trace_event` JSON (one track
//!   per rank, loadable in `chrome://tracing` / Perfetto) and
//!   [`Report::metrics_json`] a flat metrics document consumed by `bench`.
//!
//! ## Overhead contract
//!
//! With the default `record` feature **disabled** every record call is an
//! empty inline function — compile-time zero. Enabled but with no recorder
//! installed on the thread, a record call is one thread-local read.
//! Enabled and installed, a counter is an atomic `fetch_add`, a histogram
//! three, and a span edge a bounds-checked slot write into a
//! pre-allocated ring — never an allocation. The span *clock* stays
//! functional in all configurations because `lowfive`'s
//! `TransportProfile` seconds are derived from it.

#![warn(missing_docs)]

use std::cell::RefCell;

pub mod export;
pub mod hist;
pub mod json;
mod registry;
pub mod ring;
pub mod validate;

pub use hist::{bucket_hi, bucket_index, bucket_lo, HistData, NUM_BUCKETS};
pub use registry::{LaneReport, PhaseTotal, Recorder, Registry, Report};
pub use ring::{Event, EventKind, EventRing};

/// Process-wide monotonic clock. Every span in every crate stamps against
/// the same origin, so cross-rank timelines line up in the exported trace.
///
/// The clock is *virtualizable*: [`advance_ns`](clock::advance_ns)
/// injects simulated time on top of the wall-clock origin.
/// Simulated-interconnect runs and deterministic timeout tests advance it
/// explicitly; everything that derives deadlines from
/// [`now_ns`](clock::now_ns) (notably `diyblk`'s RPC retry
/// machinery) then observes the injected delay without real waiting. The
/// offset only ever grows, so the clock stays monotonic.
pub mod clock {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    static OFFSET_NS: AtomicU64 = AtomicU64::new(0);

    /// Nanoseconds since the first call in this process, plus all virtual
    /// time injected via [`advance_ns`].
    #[inline]
    pub fn now_ns() -> u64 {
        ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
            + OFFSET_NS.load(Ordering::Relaxed)
    }

    /// Advance virtual time by `delta` nanoseconds, process-wide.
    ///
    /// Deadlines already computed against [`now_ns`] expire sooner by
    /// exactly `delta`; code blocked in a quantized wait re-reads the
    /// clock within its poll interval and notices.
    pub fn advance_ns(delta: u64) {
        OFFSET_NS.fetch_add(delta, Ordering::Relaxed);
    }

    /// The clock-domain instant `timeout` from now (saturating).
    #[inline]
    pub fn deadline_after(timeout: Duration) -> u64 {
        now_ns().saturating_add(u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX))
    }
}

/// Transport phase a span belongs to. The vocabulary is fixed so per-phase
/// state lives in arrays, not maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Producer builds the distributed spatial index (Algorithm 1).
    Index,
    /// Producer answers consumer queries after file close (Algorithm 2).
    Serve,
    /// Consumer blocks in `open_file` until producers are ready.
    Open,
    /// Consumer-side dataset read against remote producers (Algorithm 3).
    Query,
    /// Query step 1: ask the index owner which ranks hold the data.
    Redirect,
    /// Query step 2: fetch intersecting blocks from data owners.
    Fetch,
    /// One RPC from the client side, tagged with its call id.
    RpcCall,
    /// Server-side handling of one RPC, tagged with the same call id.
    RpcServe,
    /// One orchestra task body, tagged with the task id.
    Task,
}

impl Phase {
    /// Every phase, in declaration order.
    pub const ALL: [Phase; 9] = [
        Phase::Index,
        Phase::Serve,
        Phase::Open,
        Phase::Query,
        Phase::Redirect,
        Phase::Fetch,
        Phase::RpcCall,
        Phase::RpcServe,
        Phase::Task,
    ];

    /// Stable trace/metrics key for this phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Index => "index",
            Phase::Serve => "serve",
            Phase::Open => "open",
            Phase::Query => "query",
            Phase::Redirect => "redirect",
            Phase::Fetch => "fetch",
            Phase::RpcCall => "rpc_call",
            Phase::RpcServe => "rpc_serve",
            Phase::Task => "task",
        }
    }
}

/// Monotonic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Ctr {
    /// Point-to-point payloads handed to the transport (mirrors
    /// `simmpi::TransportStats` messages).
    MsgsSent,
    /// Payload bytes handed to the transport (mirrors `TransportStats`).
    BytesSent,
    /// Barrier entries.
    CollBarrier,
    /// Broadcast entries (`bcast_bytes` / `bcast_one`).
    CollBcast,
    /// Gather entries (`gather_bytes`).
    CollGather,
    /// Scatter entries (`scatter_bytes`).
    CollScatter,
    /// Personalized all-to-all entries (`alltoall_bytes`).
    CollAlltoall,
    /// Allgather entries (`allgather_bytes` and typed wrappers).
    CollAllgather,
    /// Reduction entries (`reduce_one` / `allreduce_one`).
    CollReduce,
    /// Exclusive-scan entries (`exscan_u64`).
    CollExscan,
    /// RPC send attempts (every attempt of a retried call counts).
    RpcCalls,
    /// Fire-and-forget RPC notifications.
    RpcNotifies,
    /// Re-sent RPC attempts after a timeout.
    RpcRetries,
    /// RPC attempts that hit their deadline.
    RpcTimeouts,
    /// RPC attempts aborted because the peer was marked dead.
    RpcPeersDead,
    /// Producer serve sessions entered.
    ServeSessions,
    /// Orchestra task bodies started.
    TasksStarted,
    /// Orchestra task bodies finished.
    TasksFinished,
    /// Multi-call RPC fan-outs issued (`RpcClient::call_many`).
    RpcMultiCalls,
    /// Batched data requests sent on the pipelined consumer fetch path.
    FetchBatches,
    /// Consumer fetch-cache lookups answered locally (metadata or
    /// intersect results reused without a round trip).
    FetchCacheHits,
    /// Consumer fetch-cache lookups that had to go to the wire.
    FetchCacheMisses,
    /// Dataset-payload bytes memcpy'd on the transport path: serve-side
    /// gathers of deep regions, multi-part payload flattens, and
    /// intermediate reply copies. Header/metadata encoding and the final
    /// scatter into the caller's destination buffer do not count. The
    /// shallow (zero-copy) serve path must keep this at **zero** — the
    /// fig5 deep-vs-shallow A/B asserts it.
    BytesCopied,
    /// Replica registrations accepted by staging shards (one per put
    /// landed on one replica, re-replicated entries excluded).
    ReplicaPuts,
    /// Read-repair pushes executed by staging shards: a client observed a
    /// live replica answering incomplete next to a complete one and asked
    /// the complete replica to sync it.
    ReadRepairs,
    /// Staging-server failures detected and routed around — by a client
    /// (a fan-out slot failed `PeerDead` and the replica set was
    /// recomputed) or by a peer shard (missed-heartbeat `Failed`
    /// transition).
    FailoversDetected,
    /// Dataset bytes pushed by survivors re-replicating entries that lost
    /// a replica to a failed shard.
    ReRepBytes,
    /// Heartbeat datagrams sent on the gossip lane.
    HeartbeatsSent,
    /// Healthy→Suspected membership transitions (a peer's heartbeats went
    /// quiet past the suspect threshold; benign if it recovers).
    StagingSuspects,
    /// Frames handed to the simmpi socket transport's wire (zero on the
    /// in-proc backend, which delivers envelopes without framing).
    WireFramesSent,
    /// Bytes handed to the socket transport's wire: frame headers plus
    /// payloads. Compare against `bytes_sent` for framing overhead.
    WireBytesSent,
    /// Steps published into a stream series (counted once per step on the
    /// producer's rank 0, so lane sums stay exact for multi-rank tasks).
    StepsPublished,
    /// Steps evicted unconsumed by `DropOldest` back-pressure (producer
    /// rank 0 only, like `steps_published`).
    StepsDropped,
    /// Cumulative consumer lag observed at step delivery: for each
    /// delivered step, how many sequence numbers past the consumer's
    /// cursor it was (0 for an in-order `EveryStep` consumer).
    StepsLagged,
    /// Data-reply body bytes actually shipped over the wire, after codec
    /// encoding (the one-byte codec prefix excluded). Equal to
    /// `bytes_pre_codec` when every frame goes raw; strictly smaller when
    /// compression wins.
    BytesOnWire,
    /// Data-reply body bytes *before* codec encoding — the raw size the
    /// wire would have carried without the codec layer.
    BytesPreCodec,
    /// Data-plane requests (`M_INTERSECT`/`M_DATA`/`M_DATA_BATCH`)
    /// executed and replied by serve-pool worker threads rather than the
    /// dispatcher. Zero on the serial (`workers = 1`) path.
    ServeWorkerJobs,
    /// Nanoseconds serve-pool workers spent executing offloaded jobs
    /// (sum over all workers; excludes time the job waited in the queue).
    ServeWorkerBusyNs,
}

/// Number of [`Ctr`] variants (the fixed width of every counter array).
pub const NUM_CTRS: usize = 38;

impl Ctr {
    /// Every counter, in declaration order.
    pub const ALL: [Ctr; NUM_CTRS] = [
        Ctr::MsgsSent,
        Ctr::BytesSent,
        Ctr::CollBarrier,
        Ctr::CollBcast,
        Ctr::CollGather,
        Ctr::CollScatter,
        Ctr::CollAlltoall,
        Ctr::CollAllgather,
        Ctr::CollReduce,
        Ctr::CollExscan,
        Ctr::RpcCalls,
        Ctr::RpcNotifies,
        Ctr::RpcRetries,
        Ctr::RpcTimeouts,
        Ctr::RpcPeersDead,
        Ctr::ServeSessions,
        Ctr::TasksStarted,
        Ctr::TasksFinished,
        Ctr::RpcMultiCalls,
        Ctr::FetchBatches,
        Ctr::FetchCacheHits,
        Ctr::FetchCacheMisses,
        Ctr::BytesCopied,
        Ctr::ReplicaPuts,
        Ctr::ReadRepairs,
        Ctr::FailoversDetected,
        Ctr::ReRepBytes,
        Ctr::HeartbeatsSent,
        Ctr::StagingSuspects,
        Ctr::WireFramesSent,
        Ctr::WireBytesSent,
        Ctr::StepsPublished,
        Ctr::StepsDropped,
        Ctr::StepsLagged,
        Ctr::BytesOnWire,
        Ctr::BytesPreCodec,
        Ctr::ServeWorkerJobs,
        Ctr::ServeWorkerBusyNs,
    ];

    /// Stable metrics-JSON key for this counter.
    pub fn name(self) -> &'static str {
        match self {
            Ctr::MsgsSent => "msgs_sent",
            Ctr::BytesSent => "bytes_sent",
            Ctr::CollBarrier => "coll_barrier",
            Ctr::CollBcast => "coll_bcast",
            Ctr::CollGather => "coll_gather",
            Ctr::CollScatter => "coll_scatter",
            Ctr::CollAlltoall => "coll_alltoall",
            Ctr::CollAllgather => "coll_allgather",
            Ctr::CollReduce => "coll_reduce",
            Ctr::CollExscan => "coll_exscan",
            Ctr::RpcCalls => "rpc_calls",
            Ctr::RpcNotifies => "rpc_notifies",
            Ctr::RpcRetries => "rpc_retries",
            Ctr::RpcTimeouts => "rpc_timeouts",
            Ctr::RpcPeersDead => "rpc_peers_dead",
            Ctr::ServeSessions => "serve_sessions",
            Ctr::TasksStarted => "tasks_started",
            Ctr::TasksFinished => "tasks_finished",
            Ctr::RpcMultiCalls => "rpc_multi_calls",
            Ctr::FetchBatches => "fetch_batches",
            Ctr::FetchCacheHits => "fetch_cache_hits",
            Ctr::FetchCacheMisses => "fetch_cache_misses",
            Ctr::BytesCopied => "bytes_copied",
            Ctr::ReplicaPuts => "replica_puts",
            Ctr::ReadRepairs => "read_repairs",
            Ctr::FailoversDetected => "failovers_detected",
            Ctr::ReRepBytes => "rerep_bytes",
            Ctr::HeartbeatsSent => "heartbeats_sent",
            Ctr::StagingSuspects => "staging_suspects",
            Ctr::WireFramesSent => "wire_frames_sent",
            Ctr::WireBytesSent => "wire_bytes_sent",
            Ctr::StepsPublished => "steps_published",
            Ctr::StepsDropped => "steps_dropped",
            Ctr::StepsLagged => "steps_lagged",
            Ctr::BytesOnWire => "bytes_on_wire",
            Ctr::BytesPreCodec => "bytes_pre_codec",
            Ctr::ServeWorkerJobs => "serve_worker_jobs",
            Ctr::ServeWorkerBusyNs => "serve_worker_busy_ns",
        }
    }
}

/// Log2-bucket histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Point-to-point payload sizes in bytes; `sum` must equal
    /// `TransportStats` bytes for the same run (cross-checked in tests).
    MsgSize,
    /// Send-to-delivery latency per message, nanoseconds.
    MsgLatencyNs,
    /// Client-observed RPC round-trip latency, nanoseconds.
    RpcLatencyNs,
    /// RPC reply body sizes, bytes.
    RpcReplySize,
    /// Dataset bytes served per producer-side data reply.
    BytesServed,
    /// Dataset bytes fetched per consumer-side data request.
    BytesFetched,
    /// Concurrent in-flight requests per `call_many` fan-out (pipeline
    /// depth of the consumer fetch path).
    RpcInflight,
    /// `(dataset, selection)` entries per batched data request.
    FetchBatchEntries,
    /// Per-rank payload bytes entering each collective call (the local
    /// contribution, not the wire traffic the schedule generates).
    CollBytes,
    /// Wall time spent inside each collective call, nanoseconds.
    CollLatencyNs,
    /// Publish-to-delivery latency per streamed step, nanoseconds
    /// (consumer receipt of the announce minus the producer's publish
    /// stamp; both sides share the process clock).
    StepLatencyNs,
    /// Wall time spent inside wire-codec encode and decode passes,
    /// nanoseconds (one sample per pass, both directions).
    CodecLatencyNs,
    /// Depth of the concurrent serve engine's job queue, sampled at each
    /// enqueue (including the job being enqueued). Always 1 when the
    /// dispatcher executes inline (`workers = 1` never enqueues).
    ServeQueueDepth,
    /// Wall time executing one `M_INTERSECT` request, nanoseconds
    /// (handler body only, queue wait excluded).
    ServeIntersectNs,
    /// Wall time executing one `M_DATA` request, nanoseconds
    /// (gather + codec encode, queue wait excluded).
    ServeDataNs,
    /// Wall time executing one `M_DATA_BATCH` request, nanoseconds
    /// (all entries of the batch, queue wait excluded).
    ServeBatchNs,
}

/// Number of [`Hist`] variants (the fixed width of every histogram array).
pub const NUM_HISTS: usize = 16;

impl Hist {
    /// Every histogram, in declaration order.
    pub const ALL: [Hist; NUM_HISTS] = [
        Hist::MsgSize,
        Hist::MsgLatencyNs,
        Hist::RpcLatencyNs,
        Hist::RpcReplySize,
        Hist::BytesServed,
        Hist::BytesFetched,
        Hist::RpcInflight,
        Hist::FetchBatchEntries,
        Hist::CollBytes,
        Hist::CollLatencyNs,
        Hist::StepLatencyNs,
        Hist::CodecLatencyNs,
        Hist::ServeQueueDepth,
        Hist::ServeIntersectNs,
        Hist::ServeDataNs,
        Hist::ServeBatchNs,
    ];

    /// Stable metrics-JSON key for this histogram.
    pub fn name(self) -> &'static str {
        match self {
            Hist::MsgSize => "msg_size",
            Hist::MsgLatencyNs => "msg_latency_ns",
            Hist::RpcLatencyNs => "rpc_latency_ns",
            Hist::RpcReplySize => "rpc_reply_size",
            Hist::BytesServed => "bytes_served",
            Hist::BytesFetched => "bytes_fetched",
            Hist::RpcInflight => "rpc_inflight",
            Hist::FetchBatchEntries => "fetch_batch_entries",
            Hist::CollBytes => "coll_bytes",
            Hist::CollLatencyNs => "coll_latency_ns",
            Hist::StepLatencyNs => "step_latency_ns",
            Hist::CodecLatencyNs => "codec_latency_ns",
            Hist::ServeQueueDepth => "serve_queue_depth",
            Hist::ServeIntersectNs => "serve_intersect_ns",
            Hist::ServeDataNs => "serve_data_ns",
            Hist::ServeBatchNs => "serve_batch_ns",
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Install `recorder` as this thread's sink; restored to the previous
/// recorder (usually none) when the guard drops. Rank threads call this on
/// entry; helper threads install a [`Recorder::fork`] of their parent's.
pub fn install(recorder: Recorder) -> InstallGuard {
    let prev = CURRENT.with(|cur| cur.borrow_mut().replace(recorder));
    InstallGuard { prev }
}

/// RAII guard returned by [`install`].
pub struct InstallGuard {
    prev: Option<Recorder>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|cur| *cur.borrow_mut() = self.prev.take());
    }
}

/// The recorder installed on this thread, if any.
pub fn current() -> Option<Recorder> {
    CURRENT.with(|cur| cur.borrow().clone())
}

/// True when recording is compiled in and a recorder is installed here.
#[inline]
pub fn active() -> bool {
    cfg!(feature = "record") && CURRENT.with(|cur| cur.borrow().is_some())
}

/// Add `delta` to counter `c` on this thread's recorder, if any.
#[inline]
pub fn counter_add(c: Ctr, delta: u64) {
    if !cfg!(feature = "record") {
        return;
    }
    CURRENT.with(|cur| {
        if let Some(rec) = cur.borrow().as_ref() {
            rec.add(c, delta);
        }
    });
}

/// Record `value` into histogram `h` on this thread's recorder, if any.
#[inline]
pub fn hist_record(h: Hist, value: u64) {
    if !cfg!(feature = "record") {
        return;
    }
    CURRENT.with(|cur| {
        if let Some(rec) = cur.borrow().as_ref() {
            rec.record_hist(h, value);
        }
    });
}

#[inline]
fn record_edge(kind: EventKind, phase: Phase, tag: u64, t_ns: u64) {
    if !cfg!(feature = "record") {
        return;
    }
    CURRENT.with(|cur| {
        if let Some(rec) = cur.borrow().as_ref() {
            rec.push_event(Event { kind, phase, tag, t_ns });
        }
    });
}

/// Open an untagged span; the returned guard closes it on drop.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    span_tagged(phase, 0)
}

/// Open a span carrying a correlation tag (RPC call id, task id, …).
#[inline]
pub fn span_tagged(phase: Phase, tag: u64) -> SpanGuard {
    let start_ns = clock::now_ns();
    record_edge(EventKind::Enter, phase, tag, start_ns);
    SpanGuard { phase, tag, start_ns, closed: false }
}

/// RAII span. Always measures elapsed time (the profile APIs depend on
/// it); ring events are recorded only when a recorder is installed.
#[must_use = "dropping immediately produces a zero-length span"]
pub struct SpanGuard {
    phase: Phase,
    tag: u64,
    start_ns: u64,
    closed: bool,
}

impl SpanGuard {
    /// Clock-domain timestamp at which the span opened.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Nanoseconds elapsed since the span opened (span stays open).
    pub fn elapsed_ns(&self) -> u64 {
        clock::now_ns().saturating_sub(self.start_ns)
    }

    /// Seconds elapsed since the span opened (span stays open).
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns() as f64 * 1e-9
    }

    /// Close the span now; returns elapsed seconds.
    pub fn finish(mut self) -> f64 {
        self.close();
        (clock::now_ns().saturating_sub(self.start_ns)) as f64 * 1e-9
    }

    /// Close the span now; returns elapsed nanoseconds.
    pub fn finish_ns(mut self) -> u64 {
        self.close();
        clock::now_ns().saturating_sub(self.start_ns)
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            record_edge(EventKind::Exit, self.phase, self.tag, clock::now_ns());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = clock::now_ns();
        let b = clock::now_ns();
        assert!(b >= a);
    }

    #[test]
    fn clock_advance_is_visible_and_monotonic() {
        let before = clock::now_ns();
        clock::advance_ns(5_000_000);
        let after = clock::now_ns();
        assert!(after >= before + 5_000_000, "advance must add at least the delta");
        let d = clock::deadline_after(std::time::Duration::from_millis(1));
        assert!(d >= after + 1_000_000);
    }

    #[test]
    fn record_without_recorder_is_a_noop() {
        counter_add(Ctr::MsgsSent, 1);
        hist_record(Hist::MsgSize, 42);
        let sp = span(Phase::Index);
        assert!(sp.finish() >= 0.0);
        assert!(!active());
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "needs event recording")]
    fn install_scopes_and_restores() {
        let reg = Registry::new();
        {
            let _g = install(reg.recorder(0));
            assert!(active());
            counter_add(Ctr::MsgsSent, 2);
            {
                let _inner = install(reg.recorder(1));
                counter_add(Ctr::MsgsSent, 5);
            }
            // Restored to rank 0 after the inner guard dropped.
            counter_add(Ctr::BytesSent, 9);
        }
        assert!(!active());
        let report = reg.report();
        assert_eq!(report.counter(Ctr::MsgsSent), 7);
        assert_eq!(report.counter(Ctr::BytesSent), 9);
    }

    #[test]
    #[cfg_attr(not(feature = "record"), ignore = "needs event recording")]
    fn spans_pair_up_in_report() {
        let reg = Registry::new();
        {
            let _g = install(reg.recorder(3));
            let outer = span(Phase::Query);
            let inner = span_tagged(Phase::Fetch, 77);
            drop(inner);
            drop(outer);
        }
        let report = reg.report();
        let totals = report.phase_totals();
        let query = totals.iter().find(|t| t.phase == Phase::Query).expect("query total");
        let fetch = totals.iter().find(|t| t.phase == Phase::Fetch).expect("fetch total");
        assert_eq!(query.spans, 1);
        assert_eq!(fetch.spans, 1);
        assert!(query.seconds >= fetch.seconds);
    }

    #[test]
    fn names_are_unique() {
        let phases: std::collections::HashSet<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(phases.len(), Phase::ALL.len());
        let ctrs: std::collections::HashSet<_> = Ctr::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(ctrs.len(), NUM_CTRS);
        let hists: std::collections::HashSet<_> = Hist::ALL.iter().map(|h| h.name()).collect();
        assert_eq!(hists.len(), NUM_HISTS);
    }
}
