//! Recorder lanes and the registry that merges them.
//!
//! A [`Registry`] lives on the launching thread. Each rank thread gets its
//! own [`Recorder`] *lane* (single-writer ring + counters + histograms), so
//! recording never contends across ranks. Helper threads — the producer's
//! async serve thread, for instance — call [`Recorder::fork`] to get a
//! sibling lane under the same rank instead of sharing a ring, which keeps
//! every lane's event stream time-ordered and strictly nested. After the
//! world joins, [`Registry::report`] merges all lanes into a [`Report`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::hist::{AtomicHist, HistData};
use crate::ring::{Event, EventRing};
use crate::{Ctr, Hist, Phase, NUM_CTRS, NUM_HISTS};

/// Default per-lane event capacity (enter + exit per span).
const DEFAULT_EVENTS_PER_LANE: usize = 64 * 1024;

/// Shared sink for one run; clone handles freely.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

struct RegistryInner {
    events_per_lane: usize,
    lanes: Mutex<Vec<Recorder>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with the default per-lane event capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENTS_PER_LANE)
    }

    /// `events_per_lane` bounds each lane's ring; overflow drops oldest.
    pub fn with_capacity(events_per_lane: usize) -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                events_per_lane: events_per_lane.max(2),
                lanes: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Create a fresh lane for `rank`. Each call returns a new lane (the
    /// lane index counts prior lanes of the same rank), so concurrent
    /// threads of one rank never share a ring.
    pub fn recorder(&self, rank: usize) -> Recorder {
        let mut lanes = self.inner.lanes.lock();
        let lane = lanes.iter().filter(|r| r.rank() == rank).count();
        let rec = Recorder {
            inner: Arc::new(RecorderInner {
                rank,
                lane,
                registry: Arc::downgrade(&self.inner),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| AtomicHist::default()),
                ring: Mutex::new(EventRing::new(self.inner.events_per_lane)),
            }),
        };
        lanes.push(rec.clone());
        rec
    }

    /// Merge every lane into a point-in-time report. Call after the rank
    /// threads have joined; calling mid-run gives a consistent-per-lane
    /// (but racy across lanes) snapshot, which is fine for progress dumps.
    pub fn report(&self) -> Report {
        let lanes = self.inner.lanes.lock();
        let mut out: Vec<LaneReport> = lanes.iter().map(Recorder::snapshot).collect();
        out.sort_by_key(|l| (l.rank, l.lane));
        Report { lanes: out }
    }
}

/// One lane's sink. Cheap to clone (an `Arc`).
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

struct RecorderInner {
    rank: usize,
    lane: usize,
    registry: Weak<RegistryInner>,
    counters: [AtomicU64; NUM_CTRS],
    hists: [AtomicHist; NUM_HISTS],
    ring: Mutex<EventRing>,
}

impl Recorder {
    /// The rank this lane was created for.
    pub fn rank(&self) -> usize {
        self.inner.rank
    }

    /// Index among this rank's lanes (0 for the rank thread itself).
    pub fn lane(&self) -> usize {
        self.inner.lane
    }

    /// New sibling lane for the same rank, for helper threads spawned by a
    /// rank thread. Returns `None` if the registry is gone.
    pub fn fork(&self) -> Option<Recorder> {
        self.inner.registry.upgrade().map(|inner| Registry { inner }.recorder(self.inner.rank))
    }

    pub(crate) fn add(&self, c: Ctr, delta: u64) {
        self.inner.counters[c as usize].fetch_add(delta, Ordering::Relaxed);
    }

    pub(crate) fn record_hist(&self, h: Hist, value: u64) {
        self.inner.hists[h as usize].record(value);
    }

    pub(crate) fn push_event(&self, event: Event) {
        self.inner.ring.lock().push(event);
    }

    fn snapshot(&self) -> LaneReport {
        let ring = self.inner.ring.lock();
        LaneReport {
            rank: self.inner.rank,
            lane: self.inner.lane,
            events: ring.to_vec(),
            dropped: ring.dropped(),
            counters: std::array::from_fn(|i| self.inner.counters[i].load(Ordering::Relaxed)),
            hists: std::array::from_fn(|i| self.inner.hists[i].snapshot()),
        }
    }
}

/// Snapshot of one lane.
#[derive(Debug, Clone)]
pub struct LaneReport {
    /// The rank the lane belongs to.
    pub rank: usize,
    /// Index among that rank's lanes.
    pub lane: usize,
    /// Surviving ring events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Counter totals, indexed by [`Ctr`] discriminant.
    pub counters: [u64; NUM_CTRS],
    /// Histogram snapshots, indexed by [`Hist`] discriminant.
    pub hists: [HistData; NUM_HISTS],
}

/// Aggregated time attributed to one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTotal {
    /// The phase being totalled.
    pub phase: Phase,
    /// Completed (paired) spans.
    pub spans: u64,
    /// Wall seconds summed over paired spans, all lanes.
    pub seconds: f64,
}

/// Merged view over all lanes; exporters live in [`crate::export`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Every lane's snapshot, sorted by `(rank, lane)`.
    pub lanes: Vec<LaneReport>,
}

impl Report {
    /// Distinct ranks, ascending.
    pub fn ranks(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.lanes.iter().map(|l| l.rank).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Counter total over all lanes.
    pub fn counter(&self, c: Ctr) -> u64 {
        self.lanes.iter().map(|l| l.counters[c as usize]).sum()
    }

    /// Histogram merged over all lanes.
    pub fn hist(&self, h: Hist) -> HistData {
        let mut out = HistData::default();
        for lane in &self.lanes {
            out.merge(&lane.hists[h as usize]);
        }
        out
    }

    /// Ring events lost to overflow, all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// Per-phase span counts and seconds over all lanes (paired spans
    /// only; an unclosed span contributes up to the lane's last event).
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut spans = [0u64; Phase::ALL.len()];
        let mut ns = [0u64; Phase::ALL.len()];
        for lane in &self.lanes {
            for sp in crate::export::pair_spans(&lane.events) {
                spans[sp.phase as usize] += 1;
                ns[sp.phase as usize] += sp.end_ns - sp.start_ns;
            }
        }
        Phase::ALL
            .iter()
            .map(|&phase| PhaseTotal {
                phase,
                spans: spans[phase as usize],
                seconds: ns[phase as usize] as f64 * 1e-9,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_per_call_and_per_rank() {
        let reg = Registry::new();
        let a = reg.recorder(0);
        let b = reg.recorder(0);
        let c = reg.recorder(2);
        assert_eq!((a.rank(), a.lane()), (0, 0));
        assert_eq!((b.rank(), b.lane()), (0, 1));
        assert_eq!((c.rank(), c.lane()), (2, 0));
        assert_eq!(reg.report().ranks(), vec![0, 2]);
    }

    #[test]
    fn fork_opens_a_sibling_lane() {
        let reg = Registry::new();
        let a = reg.recorder(5);
        let f = a.fork().expect("registry alive");
        assert_eq!(f.rank(), 5);
        assert_eq!(f.lane(), 1);
        f.add(Ctr::MsgsSent, 3);
        a.add(Ctr::MsgsSent, 1);
        assert_eq!(reg.report().counter(Ctr::MsgsSent), 4);
    }

    #[test]
    fn fork_after_registry_drop_is_none() {
        let rec = Registry::new().recorder(0);
        assert!(rec.fork().is_none());
    }

    #[test]
    fn hists_merge_across_lanes() {
        let reg = Registry::new();
        reg.recorder(0).record_hist(Hist::MsgSize, 10);
        reg.recorder(1).record_hist(Hist::MsgSize, 30);
        let h = reg.report().hist(Hist::MsgSize);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 40);
    }
}
