//! Property tests for the observability primitives.
//!
//! * Histogram merge is associative and commutative and never loses
//!   counts: however per-rank snapshots are combined, the totals and every
//!   bucket equal a single histogram fed all values.
//! * The span ring drops only the *oldest* events on overflow and
//!   reports exactly how many were dropped — the surviving suffix is
//!   contiguous and in order, never corrupted.

use obsv::ring::{Event, EventKind, EventRing};
use obsv::{HistData, Phase};
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..64)
}

fn hist_of(values: &[u64]) -> HistData {
    let mut h = HistData::default();
    for &v in values {
        h.record(v);
    }
    h
}

fn merged(a: &HistData, b: &HistData) -> HistData {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn hist_merge_commutative(a in values(), b in values()) {
        // Raw u64 values: `sum` is wrapping, and wrapping addition is
        // itself associative and commutative, so no clamping is needed.
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
    }

    #[test]
    fn hist_merge_associative(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let left = merged(&merged(&ha, &hb), &hc);
        let right = merged(&ha, &merged(&hb, &hc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn hist_merge_lossless(a in values(), b in values()) {
        let m = merged(&hist_of(&a), &hist_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        // Merging two snapshots is indistinguishable from one histogram
        // that saw every value: same count, same sum, same buckets.
        prop_assert_eq!(m, hist_of(&all));
    }

    #[test]
    fn ring_overflow_drops_oldest_only(cap in 1usize..48, n in 0usize..200) {
        let mut ring = EventRing::new(cap);
        for i in 0..n {
            ring.push(Event {
                kind: EventKind::Enter,
                phase: Phase::Index,
                tag: i as u64,
                t_ns: i as u64,
            });
        }
        let expect_dropped = n.saturating_sub(cap) as u64;
        prop_assert_eq!(ring.dropped(), expect_dropped);
        prop_assert_eq!(ring.pushed(), n as u64);
        let kept = ring.to_vec();
        prop_assert_eq!(kept.len(), n.min(cap));
        // Survivors are exactly the newest `min(n, cap)` events, in push
        // order, with nothing rewritten.
        for (j, e) in kept.iter().enumerate() {
            prop_assert_eq!(e.tag, (expect_dropped as usize + j) as u64);
        }
    }
}

/// Ring overflow surfaces as a per-lane `dropped` count in the merged
/// report, and the trace still validates (no corruption).
#[test]
#[cfg_attr(not(feature = "record"), ignore = "needs event recording")]
fn overflow_reports_dropped_and_trace_stays_valid() {
    let reg = obsv::Registry::with_capacity(8);
    {
        let _g = obsv::install(reg.recorder(0));
        for i in 0..32u64 {
            let _sp = obsv::span_tagged(Phase::RpcCall, i);
        }
    }
    let report = reg.report();
    // 64 edges pushed into an 8-slot ring.
    assert_eq!(report.dropped(), 56);
    assert_eq!(report.lanes[0].dropped, 56);
    let summary =
        obsv::validate::validate_chrome_trace(&report.chrome_trace()).expect("truncated trace");
    assert_eq!(summary.spans, 4, "8 surviving edges pair into 4 spans");
}
