//! Fan-out with selective consumption: one AMR-producing simulation task,
//! two different consumer tasks — a "spectra" analysis that reads only the
//! coarse level, and a "zoom" analysis that reads only a small window of
//! the fine level.
//!
//! This is the scenario from the paper's introduction: "only the required
//! dataset would need to be sent from the producer to the consumer;
//! furthermore … only the subspace at the intersection of the producer and
//! consumer subdomains would be transported. The other datasets not needed
//! by the consumer would never actually have to be written, i.e., sent."
//! The transport statistics printed at the end show exactly that.
//!
//! Run with:
//! ```text
//! cargo run -p bench --release --example fanout_inventory
//! ```

use minih5::{BBox, Selection, H5};
use nyxsim::sim::{NyxSim, SimConfig};
use nyxsim::AmrHierarchy;
use orchestra::Workflow;
use simmpi::TaskComm;

const GRID: u64 = 32;
const PRODUCERS: usize = 4;

fn producer(tc: &TaskComm) {
    let h5 = H5::open_default();
    let cfg = SimConfig {
        grid: GRID,
        nranks: PRODUCERS,
        particles_per_rank: 40_000,
        centers: 5,
        seed: 99,
    };
    let sim = NyxSim::new(cfg.clone(), tc.local.rank());
    let rho = sim.deposit();
    let (lo, hi) = cfg.slab(tc.local.rank());
    let slab = BBox::new(vec![lo, 0, 0], vec![hi, GRID, GRID]);
    let mean = 40_000.0 * PRODUCERS as f64 / (GRID * GRID * GRID) as f64;

    // Locate the global density peak (encoded as peak_x*2^40 | linear id,
    // reduced with max) so consumers can find it from metadata alone.
    let (local_peak_idx, local_peak) = rho
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("nonempty slab");
    // Pack (scaled density, global linear index) so a max-reduce yields
    // the argmax exactly: density in the high bits, index in the low 40.
    let score = (((local_peak * 1e3) as u64) << 40) | (lo * GRID * GRID + local_peak_idx as u64);
    let best = tc.local.allreduce_one::<u64, _>(score, std::cmp::max);
    let peak_linear = best & ((1 << 40) - 1);
    let px = peak_linear / (GRID * GRID);
    let py = (peak_linear / GRID) % GRID;
    let pz = peak_linear % GRID;

    // Build a 2-level AMR hierarchy and write BOTH levels.
    let amr = AmrHierarchy::build([GRID, GRID, GRID], slab, rho, 8.0 * mean);
    let npatches = amr.patches.len();
    amr.write_with(&h5, "amr.h5", |file| {
        // Record the approximate peak location in the file metadata.
        file.set_attr("peak_x", px)?;
        file.set_attr("peak_y", py)?;
        file.set_attr("peak_z", pz)
    })
    .expect("AMR snapshot write");
    if tc.local.rank() == 0 {
        println!(
            "[sim] wrote 2-level AMR snapshot (rank 0: {npatches} fine patches; \
             global peak near ({px}, {py}, {pz}))"
        );
    }
}

fn spectra(tc: &TaskComm) {
    // Reads ONLY level 0 — level 1 data for this consumer never move.
    let h5 = H5::open_default();
    let f = h5.open_file("amr.h5").expect("open");
    assert_eq!(f.attr::<u32>("num_levels").expect("attr"), 2);
    let d = f.open_dataset("level_0/density").expect("level 0");
    // Each spectra rank reads its own x-slab and the task reduces a
    // density histogram — a real statistic, computed in parallel.
    let lo = GRID * tc.local.rank() as u64 / tc.local.size() as u64;
    let hi = GRID * (tc.local.rank() as u64 + 1) / tc.local.size() as u64;
    let slab: Vec<f64> = d
        .read_selection(&Selection::block(&[lo, 0, 0], &[hi - lo, GRID, GRID]))
        .expect("read level-0 slab");
    let local_mass: f64 = slab.iter().sum();
    let mass = tc.local.allreduce_one::<f64, _>(local_mass, |a, b| a + b);
    let mean = mass / (GRID * GRID * GRID) as f64;
    let local_hist = nyxsim::analysis::density_histogram(&slab, mean, 10);
    let hist = tc.local.allreduce_vec(&local_hist, |a: u64, b| a + b);
    if tc.local.rank() == 0 {
        println!("[spectra] level-0 mass = {mass:.0}; overdensity histogram = {hist:?}");
    }
    f.close().expect("close");
}

fn zoom(_tc: &TaskComm) {
    // Reads ONLY an 8³ window of the fine level around the density peak,
    // located purely from file metadata.
    let h5 = H5::open_default();
    let f = h5.open_file("amr.h5").expect("open");
    let px = f.attr::<u64>("peak_x").expect("peak_x");
    let py = f.attr::<u64>("peak_y").expect("peak_y");
    let pz = f.attr::<u64>("peak_z").expect("peak_z");
    let d = f.open_dataset("level_1/density").expect("level 1");
    let fine = 2 * GRID;
    let start: Vec<u64> =
        [px, py, pz].iter().map(|&c| (2 * c).saturating_sub(4).min(fine - 8)).collect();
    let sel = Selection::block(&start, &[8, 8, 8]);
    let window = d.read_selection::<f64>(&sel).expect("read window");
    let refined = window.iter().filter(|&&v| v > 0.0).count();
    println!(
        "[zoom] fine 8^3 window at peak ({px}, {py}, {pz}): {} of {} cells are refined",
        refined,
        window.len()
    );
    assert!(refined > 0, "window around the peak must contain refined cells");
    f.close().expect("close");
}

fn main() {
    let mut wf = Workflow::new();
    wf.task("sim", PRODUCERS, producer);
    wf.task("spectra", 2, spectra);
    wf.task("zoom", 1, zoom);
    wf.link("sim", "spectra", "amr.h5");
    wf.link("sim", "zoom", "amr.h5");
    wf.run();
    println!(
        "done: the spectra task pulled only level_0, the zoom task pulled an 8^3 window of \
         level_1; unconsumed regions never crossed the transport"
    );
}
