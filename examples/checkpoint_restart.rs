//! Checkpoint/restart through combined mode: the same write both streams
//! in situ to a live analysis AND lands on disk as a checkpoint; a second
//! workflow run restarts from the checkpoint file with plain file I/O.
//!
//! This exercises the paper's "combining the two modes" claim in the way
//! production workflows actually use it: in situ for speed, files for
//! resilience.
//!
//! Run with:
//! ```text
//! cargo run -p bench --release --example checkpoint_restart
//! ```

use lowfive::LowFiveProps;
use minih5::{Dataspace, Datatype, Selection, H5};
use orchestra::Workflow;

const N: u64 = 4096;
const PRODUCERS: usize = 4;

fn checkpoint_path() -> &'static str {
    Box::leak(
        std::env::temp_dir()
            .join("lowfive-example-ckpt")
            .join("state.nh5")
            .to_str()
            .expect("utf-8")
            .to_string()
            .into_boxed_str(),
    )
}

fn main() {
    let path = checkpoint_path();
    std::fs::create_dir_all(std::path::Path::new(path).parent().expect("parent")).expect("dir");
    let _ = std::fs::remove_file(path);

    // ---- Phase 1: run the workflow with combined mode ----
    let mut props = LowFiveProps::new();
    props.set_passthrough("*", true); // memory stays on: both targets
    let mut wf = Workflow::new();
    wf.props(props);
    wf.task("sim", PRODUCERS, move |tc| {
        let h5 = H5::open_default();
        let f = h5.create_file(path).expect("create");
        let d =
            f.create_dataset("state", Datatype::UInt64, Dataspace::simple(&[N])).expect("dataset");
        d.set_attr("step", 41u64).expect("attr");
        let chunk = N / PRODUCERS as u64;
        let lo = tc.local.rank() as u64 * chunk;
        let vals: Vec<u64> = (lo..lo + chunk).map(|i| i * 3).collect();
        d.write_selection(&Selection::block(&[lo], &[chunk]), &vals).expect("write");
        f.close().expect("close");
    });
    wf.task("monitor", 2, move |tc| {
        // Live in situ consumer: verifies the stream while the checkpoint
        // is being written.
        let h5 = H5::open_default();
        let f = h5.open_file(path).expect("open in situ");
        let d = f.open_dataset("state").expect("state");
        let half = N / 2;
        let lo = tc.local.rank() as u64 * half;
        let got: Vec<u64> =
            d.read_selection(&Selection::block(&[lo], &[half])).expect("in situ read");
        assert!(got.iter().enumerate().all(|(j, &v)| v == (lo + j as u64) * 3));
        f.close().expect("close");
        if tc.local.rank() == 0 {
            println!("[monitor] live stream verified while checkpointing");
        }
    });
    wf.link("sim", "monitor", "*");
    wf.run();
    println!("[phase 1] workflow done; checkpoint at {path}");

    // ---- Phase 2: restart from the checkpoint with plain file I/O ----
    let h5 = H5::native();
    let f = h5.open_file(path).expect("restart open");
    let d = f.open_dataset("state").expect("state");
    assert_eq!(d.attr::<u64>("step").expect("step"), 41);
    let state: Vec<u64> = d.read_all().expect("restart read");
    assert!(state.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    f.close().expect("close");
    println!(
        "[phase 2] restart verified: {} elements recovered from the checkpoint at step 41",
        state.len()
    );
}
