//! The same unmodified workflow run three ways — pure in-memory, pure
//! file, and combined — by flipping LowFive properties only (the paper's
//! "seamlessly switch between storage and in situ data transport").
//!
//! Run with:
//! ```text
//! cargo run -p bench --release --example file_vs_memory
//! ```

use std::time::Instant;

use lowfive::LowFiveProps;
use minih5::{Dataspace, Datatype, Selection, H5};
use orchestra::Workflow;

const N: u64 = 1 << 18; // 256 Ki u64 = 2 MiB
const PRODUCERS: usize = 4;

fn build_workflow(props: LowFiveProps, filename: &'static str) -> Workflow {
    let mut wf = Workflow::new();
    wf.props(props);
    wf.task("producer", PRODUCERS, move |tc| {
        let h5 = H5::open_default();
        let f = h5.create_file(filename).expect("create");
        let d =
            f.create_dataset("signal", Datatype::UInt64, Dataspace::simple(&[N])).expect("dataset");
        let chunk = N / PRODUCERS as u64;
        let s = tc.local.rank() as u64 * chunk;
        let vals: Vec<u64> = (s..s + chunk).collect();
        d.write_selection(&Selection::block(&[s], &[chunk]), &vals).expect("write");
        f.close().expect("close");
    });
    wf.task("consumer", 2, move |tc| {
        let h5 = H5::open_default();
        let f = h5.open_file(filename).expect("open");
        let d = f.open_dataset("signal").expect("signal");
        let half = N / 2;
        let s = tc.local.rank() as u64 * half;
        let got: Vec<u64> = d.read_selection(&Selection::block(&[s], &[half])).expect("read");
        assert_eq!(got[0], s);
        assert_eq!(*got.last().expect("nonempty"), s + half - 1);
        f.close().expect("close");
    });
    wf.link("producer", "consumer", filename);
    wf
}

fn main() {
    let dir = std::env::temp_dir().join("lowfive-example-fvm");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    // Leak the paths: Workflow bodies want 'static strs in this example.
    let file_path: &'static str =
        Box::leak(dir.join("signal.nh5").to_str().expect("utf-8").to_string().into_boxed_str());
    let combined_path: &'static str =
        Box::leak(dir.join("combined.nh5").to_str().expect("utf-8").to_string().into_boxed_str());

    // 1. Memory mode (default): no file is ever created.
    let t0 = Instant::now();
    build_workflow(LowFiveProps::new(), "memory-only.h5").run();
    let t_mem = t0.elapsed().as_secs_f64();
    assert!(!std::path::Path::new("memory-only.h5").exists());

    // 2. File mode: memory off, passthrough on — data go through storage.
    let mut file_props = LowFiveProps::new();
    file_props.set_memory("*", false).set_passthrough("*", true);
    let t0 = Instant::now();
    build_workflow(file_props, file_path).run();
    let t_file = t0.elapsed().as_secs_f64();
    assert!(std::path::Path::new(file_path).exists());

    // 3. Combined: consumers get the data in situ AND a checkpoint lands
    //    on disk.
    let mut both = LowFiveProps::new();
    both.set_passthrough("*", true);
    let t0 = Instant::now();
    build_workflow(both, combined_path).run();
    let t_both = t0.elapsed().as_secs_f64();
    assert!(std::path::Path::new(combined_path).exists());

    println!("{} u64 elements, {} producers → 2 consumers", N, PRODUCERS);
    println!("  memory mode   : {t_mem:.4} s  (no file created)");
    println!("  file mode     : {t_file:.4} s  (file: {file_path})");
    println!("  combined mode : {t_both:.4} s  (in situ + checkpoint)");
}
