//! The paper's science use case (§IV-C) end to end: a Nyx-like
//! particle-mesh cosmology simulation coupled in situ with a Reeber-like
//! halo finder — with **zero changes** to either "application": the
//! orchestration layer installs the LowFive plugin in each task thread's
//! VOL registry and both sides call the plain `minih5` API.
//!
//! Run with:
//! ```text
//! cargo run -p bench --release --example nyx_reeber
//! ```

use minih5::H5;
use nyxsim::find_halos_distributed;
use nyxsim::sim::{read_snapshot_slab, write_snapshot, NyxSim, SimConfig, WriteOptions};
use orchestra::Workflow;

const GRID: u64 = 48;
const PRODUCERS: usize = 8;
const CONSUMERS: usize = 2;
const SNAPSHOTS: usize = 3;

fn main() {
    let mut wf = Workflow::new();

    // ---- the "simulation": unmodified H5 calls ----
    wf.task("nyx", PRODUCERS, |tc| {
        let h5 = H5::open_default(); // picks up whatever VOL is installed
        let cfg = SimConfig {
            grid: GRID,
            nranks: PRODUCERS,
            particles_per_rank: 60_000,
            centers: 6,
            seed: 7,
        };
        let mut sim = NyxSim::new(cfg, tc.local.rank());
        for s in 0..SNAPSHOTS {
            let rho = sim.deposit();
            write_snapshot(&h5, &format!("plt{s:05}"), &sim, &rho, WriteOptions::default())
                .expect("snapshot write");
            if tc.local.rank() == 0 {
                println!("[nyx] snapshot {s} written (step {})", sim.step_number());
            }
            sim.step();
        }
    });

    // ---- the "analysis": unmodified H5 calls + halo finding ----
    wf.task("reeber", CONSUMERS, |tc| {
        let h5 = H5::open_default();
        for s in 0..SNAPSHOTS {
            // Each analysis rank reads its x-slab of the density field.
            let lo = GRID * tc.local.rank() as u64 / CONSUMERS as u64;
            let hi = GRID * (tc.local.rank() as u64 + 1) / CONSUMERS as u64;
            let (step, slab) =
                read_snapshot_slab(&h5, &format!("plt{s:05}"), lo, hi).expect("snapshot read");
            // Reeber-style local–global halo finding: slab-local
            // merge-tree sweeps, boundary-plane exchange, reduction on
            // analysis rank 0 — the field itself is never gathered.
            let local_mass: f64 = slab.iter().sum();
            let mass = tc.local.allreduce_one::<f64, _>(local_mass, |a, b| a + b);
            let mean = mass / (GRID * GRID * GRID) as f64;
            if let Some(halos) = find_halos_distributed(
                &tc.local,
                [GRID, GRID, GRID],
                (lo, hi),
                &slab,
                8.0 * mean,
                2,
            ) {
                let top: Vec<String> = halos
                    .iter()
                    .take(3)
                    .map(|h| format!("mass {:.0} at {:?}", h.mass, h.peak))
                    .collect();
                println!(
                    "[reeber] step {step}: {} halos above threshold; heaviest: {}",
                    halos.len(),
                    top.join(", ")
                );
                assert!(!halos.is_empty(), "expected halos in a clustered field");
            }
        }
    });

    // The in situ wiring: snapshots flow nyx → reeber, never to disk.
    wf.link("nyx", "reeber", "plt*");
    wf.run();
    println!("workflow complete: {SNAPSHOTS} snapshots analyzed in situ, nothing written to disk");
}
