//! Streaming time-series with an emulated interconnect and fine-grained
//! transport profiling.
//!
//! Exercises three extension features of this reproduction together:
//!
//! * **extensible datasets** — each snapshot's sample table grows
//!   (`Dataset::extend`) before the file closes, as adaptive codes do,
//! * **interconnect emulation** — the whole workflow runs under a
//!   [`simmpi::CostModel`] charging latency + bandwidth per message, so
//!   shared-memory runs exhibit network-like timing,
//! * **transport profiling** — the paper's future-work item
//!   ("profiling our communication at finer grain"): per-phase
//!   index/serve/redirect/fetch breakdowns from
//!   [`lowfive::DistMetadataVol::profile`].
//!
//! Run with:
//! ```text
//! cargo run -p bench --release --example streaming_profile
//! ```
//!
//! Besides the printed per-phase profile, the run records every rank's
//! spans/counters/histograms through the `obsv` registry and writes
//! `streaming_profile.trace.json` (Chrome `trace_event` — load it in
//! Perfetto or `chrome://tracing`) plus `streaming_profile.metrics.json`
//! into `$LOWFIVE_TRACE_DIR` (default `bench-results/`).

use std::sync::Arc;

use lowfive::DistVolBuilder;
use minih5::space::UNLIMITED;
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use simmpi::{CostModel, TaskSpec, TaskWorld};

const COLS: u64 = 64;
const BASE_ROWS: u64 = 32;
const STEPS: usize = 4;
const PRODUCERS: usize = 3;
const CONSUMERS: usize = 2;

fn main() {
    let specs = [TaskSpec::new("sensors", PRODUCERS), TaskSpec::new("monitor", CONSUMERS)];
    let registry = obsv::Registry::new();
    let out = TaskWorld::run_observed(
        &specs,
        Some(CostModel::interconnect()),
        Some(&registry),
        |tc| {
            let _task = obsv::span_tagged(obsv::Phase::Task, tc.task_id as u64);
            let producers: Vec<usize> = (0..PRODUCERS).collect();
            let consumers: Vec<usize> = (PRODUCERS..PRODUCERS + CONSUMERS).collect();
            let vol = if tc.task_id == 0 {
                DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                    .produce("step*", consumers.clone())
                    .build()
            } else {
                DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                    .consume("step*", producers.clone())
                    .build()
            };
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);

            for step in 0..STEPS {
                let name = format!("step{step:03}");
                if tc.task_id == 0 {
                    let f = h5.create_file(&name).expect("create");
                    let d = f
                        .create_dataset_chunked(
                            "samples",
                            Datatype::Float64,
                            Dataspace::extensible(&[BASE_ROWS, COLS], &[UNLIMITED, COLS]),
                            &[BASE_ROWS, COLS],
                        )
                        .expect("dataset");
                    // Base rows, split across producer ranks.
                    let chunk = BASE_ROWS / PRODUCERS as u64;
                    let lo = tc.local.rank() as u64 * chunk;
                    let hi = if tc.local.rank() + 1 == PRODUCERS { BASE_ROWS } else { lo + chunk };
                    let vals: Vec<f64> =
                        (lo * COLS..hi * COLS).map(|i| i as f64 + 1000.0 * step as f64).collect();
                    d.write_selection(&Selection::block(&[lo, 0], &[hi - lo, COLS]), &vals)
                        .expect("base write");
                    // Adaptive burst: this step produced extra rows — append
                    // them (collective extend).
                    let extra = 8 * (step as u64 + 1);
                    d.extend(&[BASE_ROWS + extra, COLS]).expect("extend");
                    let share = extra / PRODUCERS as u64;
                    let elo = BASE_ROWS + tc.local.rank() as u64 * share;
                    let ehi = if tc.local.rank() + 1 == PRODUCERS {
                        BASE_ROWS + extra
                    } else {
                        elo + share
                    };
                    if ehi > elo {
                        let vals: Vec<f64> = (elo * COLS..ehi * COLS)
                            .map(|i| i as f64 + 1000.0 * step as f64)
                            .collect();
                        d.write_selection(&Selection::block(&[elo, 0], &[ehi - elo, COLS]), &vals)
                            .expect("append write");
                    }
                    f.close().expect("close (serve)");
                } else {
                    let f = h5.open_file(&name).expect("open");
                    let d = f.open_dataset("samples").expect("samples");
                    let (_, sp) = d.meta().expect("meta");
                    let rows = sp.dims()[0];
                    assert_eq!(rows, BASE_ROWS + 8 * (step as u64 + 1), "appended rows visible");
                    // Each monitor rank reads half the rows.
                    let lo = rows * tc.local.rank() as u64 / CONSUMERS as u64;
                    let hi = rows * (tc.local.rank() as u64 + 1) / CONSUMERS as u64;
                    let got: Vec<f64> = d
                        .read_selection(&Selection::block(&[lo, 0], &[hi - lo, COLS]))
                        .expect("read");
                    // Validate position encoding.
                    for (j, v) in got.iter().enumerate() {
                        let expect = (lo * COLS) as f64 + j as f64 + 1000.0 * step as f64;
                        assert_eq!(*v, expect);
                    }
                    f.close().expect("close");
                }
            }
            // Report the per-rank profile.
            let p = vol.profile();
            if tc.task_id == 0 && tc.local.rank() == 0 {
                println!("[sensors 0] profile over {STEPS} steps:");
                println!("  index : {:>8.4} s  ({} boxes indexed)", p.index_seconds, p.index_boxes);
                println!(
                "  serve : {:>8.4} s  ({} sessions, {} metadata / {} redirect / {} data requests, {:.2} MiB served)",
                p.serve_seconds,
                p.serve_sessions,
                p.metadata_requests,
                p.intersect_requests,
                p.data_requests,
                p.bytes_served as f64 / (1 << 20) as f64
            );
            }
            if tc.task_id == 1 && tc.local.rank() == 0 {
                println!("[monitor 0] profile over {STEPS} steps:");
                println!(
                    "  open      : {:>8.4} s (blocked until producers closed)",
                    p.open_seconds
                );
                println!("  redirect  : {:>8.4} s (Algorithm 3 step 1)", p.redirect_seconds);
                println!(
                    "  fetch     : {:>8.4} s (Algorithm 3 step 2, {:.2} MiB)",
                    p.fetch_seconds,
                    p.bytes_fetched as f64 / (1 << 20) as f64
                );
            }
            p.bytes_fetched + p.bytes_served
        },
    );
    let moved: u64 = out.results.iter().sum();
    println!(
        "workflow done under emulated interconnect (1 µs latency, 10 GB/s): {} payload bytes \
         through the transport, {} messages total",
        moved, out.stats.messages
    );

    // Export the recorded trace: one Perfetto-loadable track per rank.
    let report = registry.report();
    let trace = report.chrome_trace();
    let summary = obsv::validate::validate_chrome_trace(&trace).expect("trace must validate");
    let dir = std::path::PathBuf::from(
        std::env::var("LOWFIVE_TRACE_DIR").unwrap_or_else(|_| "bench-results".into()),
    );
    std::fs::create_dir_all(&dir).expect("create trace dir");
    let trace_path = dir.join("streaming_profile.trace.json");
    std::fs::write(&trace_path, trace).expect("write trace");
    let metrics_path = dir.join("streaming_profile.metrics.json");
    std::fs::write(&metrics_path, report.metrics_json()).expect("write metrics");
    println!(
        "trace: {} spans across {} rank tracks -> {} (metrics: {})",
        summary.spans,
        summary.ranks_with_spans.len(),
        trace_path.display(),
        metrics_path.display()
    );
}
