//! Chaos-testing demo: the README's fixed-seed fault-injection flow.
//!
//! Three acts, all on the same 1-producer → 2-consumer workflow:
//!   1. a benign delay plan — redistribution is byte-exact anyway;
//!   2. a drop-everything-once plan — consumers retry and still succeed;
//!   3. a kill-the-producer plan — consumers surface `PeerUnavailable`
//!      instead of hanging, and replaying the seed reproduces the trace.

use std::sync::Arc;
use std::time::Duration;

use lowfive::{DistVolBuilder, LowFiveProps};
use minih5::{Dataspace, Datatype, H5Error, Ownership, Selection, Vol, H5};
use simmpi::{ChaosOutput, FaultPlan, TaskComm, TaskSpec, TaskWorld};

const CELLS: u64 = 64;

fn exchange(plan: FaultPlan, props: LowFiveProps) -> ChaosOutput<Result<u64, String>> {
    let specs = [TaskSpec::new("producer", 1), TaskSpec::new("consumer", 2)];
    TaskWorld::run_chaos(&specs, None, plan, move |tc: TaskComm| {
        if tc.task_id == 0 {
            produce(&tc).map_err(|e| e.to_string())
        } else {
            consume(&tc, props.clone()).map_err(|e| match e {
                H5Error::PeerUnavailable(m) => format!("peer unavailable: {m}"),
                other => format!("{other}"),
            })
        }
    })
}

fn produce(tc: &TaskComm) -> Result<u64, H5Error> {
    let vol: Arc<dyn Vol> =
        DistVolBuilder::new(tc.world.clone(), tc.local.clone()).produce("*", vec![1, 2]).build();
    let h5 = H5::with_vol(vol);
    let f = h5.create_file("demo.h5")?;
    let d = f.create_dataset("grid", Datatype::UInt64, Dataspace::simple(&[CELLS]))?;
    let bytes: Vec<u8> = (0..CELLS).flat_map(|v| v.to_le_bytes()).collect();
    d.write_bytes(&Selection::block(&[0], &[CELLS]), bytes.into(), Ownership::Shallow)?;
    f.close()?; // serves consumers until they are done (or we are killed)
    Ok(CELLS)
}

fn consume(tc: &TaskComm, props: LowFiveProps) -> Result<u64, H5Error> {
    let vol: Arc<dyn Vol> = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
        .props(props)
        .consume("*", vec![0])
        .build();
    let h5 = H5::with_vol(vol);
    let f = h5.open_file("demo.h5")?;
    let d = f.open_dataset("grid")?;
    let half = CELLS / 2;
    let lo = (tc.local.rank() as u64) * half;
    let want: Vec<u8> = (lo..lo + half).flat_map(|v| v.to_le_bytes()).collect();
    // Read repeatedly so the producer is still mid-serve when a kill
    // plan strikes (a single read finishes before its 30th send).
    for _ in 0..40 {
        let got = d.read_bytes(&Selection::block(&[lo], &[half]))?;
        assert_eq!(got[..], want[..], "redistributed bytes must be exact");
    }
    f.close()?;
    Ok(half)
}

fn bounded_props() -> LowFiveProps {
    let mut props = LowFiveProps::new();
    props.set_rpc_timeout("*", Some(Duration::from_millis(250)));
    props.set_rpc_retries("*", 3);
    props
}

fn main() {
    // Act 1: delays change timing, never bytes. No retry arming needed.
    let out =
        exchange(FaultPlan::new(0xD31A).delay(0.4, Duration::from_millis(1)), LowFiveProps::new());
    println!("[delay]   consumers: {:?}  (trace: {} delayed)", &out.results[1..], out.trace.len());

    // Act 2: every request/reply flow loses its first message; the
    // armed retry policy resends and the exchange still completes.
    let out = exchange(FaultPlan::new(0xD809).drop_once(1.0), bounded_props());
    println!(
        "[drop]    consumers: {:?}  (trace: {} dropped)",
        &out.results[1..],
        out.trace.iter().filter(|e| e.kind == simmpi::FaultKind::Dropped).count()
    );

    // Act 3: the producer dies at its 30th send, mid-serve. Bounded
    // consumers error out quickly instead of hanging — and the same
    // seed replays the same trace, byte for byte.
    let plan = || FaultPlan::new(0xFEED_BEEF).kill_rank(0, 30);
    let out = exchange(plan(), bounded_props());
    println!("[kill]    deaths: {:?}", out.deaths);
    println!("[kill]    consumers: {:?}", &out.results[1..]);
    println!("[kill]    trace: {:?}", out.trace);
    let again = exchange(plan(), bounded_props());
    println!("[replay]  identical trace: {}", out.trace == again.trace);
}
