//! Step streaming demo: a 2-rank producer task publishes a series of
//! timesteps through a bounded step queue while two consumers follow the
//! same series under different policies — an analysis rank reading
//! [`StepPolicy::EveryStep`] losslessly, and a dashboard rank reading
//! [`StepPolicy::LatestStep`], happy to skip ahead whenever it falls
//! behind.
//!
//! The walkthrough in `docs/STREAMING.md` narrates this file.
//!
//! Run with:
//! ```text
//! cargo run -p bench --release --example steps_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use lowfive::{
    BackPressure, DistVolBuilder, LowFiveProps, StepPolicy, StepPublisher, StepSubscription,
};
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use simmpi::{TaskSpec, TaskWorld};

const STEPS: u64 = 8;
const ELEMS: u64 = 16; // per producer rank
const PRODUCERS: usize = 2;

fn main() {
    let reg = obsv::Registry::new();
    let specs = [TaskSpec::new("sim", PRODUCERS), TaskSpec::new("analysis", 2)];
    TaskWorld::run_observed(&specs, None, Some(&reg), |tc| {
        // Streaming knobs are ordinary file properties, matched on the
        // *series* name: a queue of up to 3 unconsumed steps, and Block
        // back-pressure (the publisher waits for the slowest consumer
        // instead of evicting steps).
        let mut props = LowFiveProps::new();
        props
            .set_stream_queue_depth("sim.h5", 3)
            .set_stream_backpressure("sim.h5", BackPressure::Block);

        if tc.task_id == 0 {
            // ---- producer: write a slot file per step, then publish ----
            let consumers: Vec<usize> =
                (0..tc.task_size(1)).map(|r| tc.world_rank_of(1, r)).collect();
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .produce("sim.h5@s*", consumers)
                .async_serve(true) // streaming requires overlap mode
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let publisher = StepPublisher::new(vol.clone(), "sim.h5").expect("publisher");

            // Every producer rank runs the same loop in lockstep, exactly
            // like any other collective write.
            let p = tc.local.rank() as u64;
            for seq in 0..STEPS {
                let f = h5.create_file(&publisher.step_file()).expect("create slot");
                let d = f
                    .create_dataset(
                        "field",
                        Datatype::UInt64,
                        Dataspace::simple(&[PRODUCERS as u64 * ELEMS]),
                    )
                    .expect("dataset");
                let base = p * ELEMS;
                let vals: Vec<u64> = (base..base + ELEMS).map(|i| seq * 1000 + i).collect();
                d.write_selection(&Selection::block(&[base], &[ELEMS]), &vals).expect("write");
                f.close().expect("close slot");
                let published = publisher.publish().expect("publish");
                if p == 0 {
                    println!("[sim] published step {published}");
                }
            }
            // Wait until every consumer acknowledged everything, then let
            // the serve thread go.
            assert!(publisher.finish(Some(Duration::from_secs(30))), "consumers caught up");
            vol.drain();
        } else {
            // ---- consumers: same series, two different policies ----
            let producers: Vec<usize> =
                (0..tc.task_size(0)).map(|r| tc.world_rank_of(0, r)).collect();
            let vol = DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .props(props)
                .consume("sim.h5@s*", producers)
                .build();
            let h5 = H5::with_vol(vol.clone() as Arc<dyn Vol>);
            let (who, policy) = match tc.local.rank() {
                0 => ("analysis", StepPolicy::EveryStep),
                _ => ("dashboard", StepPolicy::LatestStep),
            };
            let mut sub = StepSubscription::new(vol, "sim.h5", policy).expect("subscribe");
            let mut seen = Vec::new();
            while let Some(step) = sub.next_step().expect("next step") {
                let f = h5.open_file(&step.file).expect("open step");
                let field =
                    f.open_dataset("field").expect("dataset").read_all::<u64>().expect("read");
                f.close().expect("close step");
                // Every cell encodes (step, index): any stale read shows.
                for (i, v) in field.iter().enumerate() {
                    assert_eq!(*v, step.seq * 1000 + i as u64, "step {} cell {i}", step.seq);
                }
                seen.push(step.seq);
                if who == "dashboard" {
                    // Render slowly: LatestStep will skip for us.
                    std::thread::sleep(Duration::from_millis(3));
                }
            }
            println!("[{who}] saw steps {seen:?}");
            if who == "analysis" {
                // EveryStep under Block is lossless: the exact sequence.
                assert_eq!(seen, (0..STEPS).collect::<Vec<_>>());
            } else {
                // LatestStep keeps order but may skip; it always ends on
                // the final step.
                assert!(seen.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(seen.last(), Some(&(STEPS - 1)));
            }
        }
    });

    let report = reg.report();
    println!(
        "counters: steps_published={} steps_dropped={} steps_lagged={}",
        report.counter(obsv::Ctr::StepsPublished),
        report.counter(obsv::Ctr::StepsDropped),
        report.counter(obsv::Ctr::StepsLagged),
    );
    assert_eq!(report.counter(obsv::Ctr::StepsPublished), STEPS);
    assert_eq!(report.counter(obsv::Ctr::StepsDropped), 0, "Block never drops");
}
