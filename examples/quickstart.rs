//! Quickstart: a 6-rank producer task streams a 2-d grid, decomposed by
//! rows, to a 4-rank consumer task that reads it by columns — the exact
//! scenario of Fig. 3 in the paper — plus a particle list.
//!
//! Run with:
//! ```text
//! cargo run -p bench --release --example quickstart
//! ```

use std::sync::Arc;

use lowfive::DistVolBuilder;
use minih5::{Dataspace, Datatype, Selection, Vol, H5};
use simmpi::{TaskSpec, TaskWorld};

const ROWS: u64 = 24;
const COLS: u64 = 16;
const PARTICLES: u64 = 600;

fn main() {
    let specs = [TaskSpec::new("producer", 6), TaskSpec::new("consumer", 4)];
    let out = TaskWorld::run_with(&specs, None, |tc| {
        let producers: Vec<usize> = (0..6).collect();
        let consumers: Vec<usize> = (6..10).collect();

        // Each rank builds its LowFive plugin from the workflow topology.
        let vol: Arc<dyn Vol> = if tc.task_id == 0 {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .produce("*.h5", consumers.clone())
                .build()
        } else {
            DistVolBuilder::new(tc.world.clone(), tc.local.clone())
                .consume("*.h5", producers.clone())
                .build()
        };
        let h5 = H5::with_vol(vol);

        if tc.task_id == 0 {
            // ---- producer: ordinary HDF5-style writes ----
            let f = h5.create_file("step1.h5").expect("create file");
            let g1 = f.create_group("group1").expect("group1");
            let grid = g1
                .create_dataset("grid", Datatype::UInt64, Dataspace::simple(&[ROWS, COLS]))
                .expect("grid dataset");
            // Row slab of this rank.
            let r0 = tc.local.rank() as u64 * (ROWS / 6);
            let vals: Vec<u64> =
                (0..(ROWS / 6) * COLS).map(|i| (r0 + i / COLS) * COLS + i % COLS).collect();
            grid.write_selection(&Selection::block(&[r0, 0], &[ROWS / 6, COLS]), &vals)
                .expect("grid write");

            let g2 = f.create_group("group2").expect("group2");
            let parts = g2
                .create_dataset(
                    "particles",
                    Datatype::vector(Datatype::Float32, 3),
                    Dataspace::simple(&[PARTICLES]),
                )
                .expect("particles dataset");
            let chunk = PARTICLES / 6;
            let s = tc.local.rank() as u64 * chunk;
            let bytes: Vec<u8> = (s..s + chunk)
                .flat_map(|i| {
                    let v = [i as f32, i as f32 + 0.5, -(i as f32)];
                    v.into_iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>()
                })
                .collect();
            parts
                .write_bytes(
                    &Selection::block(&[s], &[chunk]),
                    bytes.into(),
                    minih5::Ownership::Shallow, // zero-copy handoff
                )
                .expect("particles write");

            // Closing the file indexes the regions and serves the
            // consumers — the in situ exchange happens here.
            f.close().expect("close");
            if tc.local.rank() == 0 {
                println!("[producer] wrote grid {}x{} + {} particles", ROWS, COLS, PARTICLES);
            }
        } else {
            // ---- consumer: ordinary HDF5-style reads, column slabs ----
            let f = h5.open_file("step1.h5").expect("open file");
            let grid = f.open_dataset("group1/grid").expect("grid");
            let c0 = tc.local.rank() as u64 * (COLS / 4);
            let my = grid
                .read_selection::<u64>(&Selection::block(&[0, c0], &[ROWS, COLS / 4]))
                .expect("grid read");
            // Validate: values encode global position.
            for (i, v) in my.iter().enumerate() {
                let row = i as u64 / (COLS / 4);
                let col = c0 + i as u64 % (COLS / 4);
                assert_eq!(*v, row * COLS + col, "grid value mismatch");
            }
            let parts = f.open_dataset("group2/particles").expect("particles");
            let chunk = PARTICLES / 4;
            let s = tc.local.rank() as u64 * chunk;
            let raw = parts.read_bytes(&Selection::block(&[s], &[chunk])).expect("particles read");
            assert_eq!(raw.len() as u64, chunk * 12);
            f.close().expect("close");
            println!(
                "[consumer {}] columns [{}, {}) and particles [{}, {}) verified",
                tc.local.rank(),
                c0,
                c0 + COLS / 4,
                s,
                s + chunk
            );
        }
    });
    println!(
        "transport: {} messages, {} payload bytes (grid+particles = {} data bytes)",
        out.stats.messages,
        out.stats.bytes,
        ROWS * COLS * 8 + PARTICLES * 12
    );
}
